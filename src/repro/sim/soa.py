"""The structure-of-arrays (SoA) tick engine.

PR 4 vectorized the scheduler *decision* loops; this module vectorizes
the **tick loop** itself.  Everything the periodic tick touches —
activation rotation, the ERC threshold scan, relay-load accumulation,
the per-tick coverage reduction and the battery advance — is
reimplemented here over flat aligned numpy arrays and boolean masks, so
a 10k–100k-sensor field steps at array speed instead of walking Python
objects sensor-by-sensor.

Layout
------

:class:`StateArrays` is the one bundle of flat aligned arrays:

* per-sensor: ``positions`` (n, 2), ``levels_j`` (n,), ``rates_w``
  (n,), ``active`` (n,), ``requested`` (n,), ``cluster_id`` (n,) —
  aliases of the canonical buffers owned by the bank / components, so
  writing through either view is the same write;
* per-cluster: ``members`` (m, w) padded with ``-1``, ``sizes`` (m,),
  ``ptr`` (m,) — the rotation state in rectangular form;
* per-RV: ``rv_pos`` (k, 2), ``rv_level_j`` (k,), ``rv_busy`` (k,),
  ``rv_returning`` (k,) — fleet motion integrated per-RV over position
  arrays (kept write-through by the fleet component);
* preallocated scratch for the battery-advance and gate-scan steps, so
  the steady-state tick allocates **nothing** (the ``sim.soa.alloc``
  counter records every scratch (re)allocation; it must stay flat
  across ticks).

Exactness contract
------------------

Every kernel here selects the *same indices* with the same tie-breaks
as the retained object-walking reference (``repro.core.activation``,
``repro.core.erc``, the ``traffic_order`` relay walk in
``repro.sim.components.energy``), and then performs the identical
IEEE-754 arithmetic per element.  Relay packet counts are integers, so
the level-order tree accumulation commutes bit-exactly with the
reference's farthest-first walk.  Fixed-seed goldens therefore do not
move when the knob flips.

Knobs (the ``REPRO_VECTORIZE`` pattern):

* ``REPRO_SOA=0`` — run the object-walking reference everywhere.
* ``REPRO_DEBUG_SOA=1`` — shadow mode: run *both* paths on every tick
  step and raise on the first divergence (bit-exact comparison).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from ..core.activation import FullTimeActivator, RoundRobinActivator
from ..core.erc import EnergyRequestController

__all__ = [
    "StateArrays",
    "SoAFullTimeActivator",
    "SoARoundRobinActivator",
    "batch_enabled",
    "debug_batch",
    "debug_soa",
    "erc_release_scan",
    "first_alive_slots",
    "pack_clusters",
    "relay_levels",
    "relay_accumulate",
    "soa_enabled",
    "wrap_activator",
]


def soa_enabled() -> bool:
    """The ``REPRO_SOA`` opt-out (default: enabled)."""
    return os.environ.get("REPRO_SOA", "1") not in ("0", "false", "no")


def debug_soa() -> bool:
    """``REPRO_DEBUG_SOA=1``: run both engines, assert bit-equality."""
    return os.environ.get("REPRO_DEBUG_SOA", "") not in ("", "0")


def batch_enabled() -> bool:
    """The ``REPRO_BATCH`` opt-in for the batched multi-world engine
    (default: off — single-world runs keep the serial SoA loop)."""
    return os.environ.get("REPRO_BATCH", "") not in ("", "0", "false", "no")


def debug_batch() -> bool:
    """``REPRO_DEBUG_BATCH=1``: shadow every batched world with a
    serial twin and assert bit-equality after each batched tick."""
    return os.environ.get("REPRO_DEBUG_BATCH", "") not in ("", "0")


def engine_provenance() -> dict:
    """Which engine knobs are live — recorded in run manifests so a
    drift report can say which engine produced each run."""
    from ..core.kernels import vectorize_enabled

    return {
        "soa": soa_enabled(),
        "soa_debug": debug_soa(),
        "vectorize": vectorize_enabled(),
        "incremental": os.environ.get("REPRO_INCREMENTAL", "1")
        not in ("0", "false", "no"),
        "batch": batch_enabled(),
        "batch_debug": debug_batch(),
    }


class StateArrays:
    """Flat aligned arrays for one simulation, plus reusable scratch.

    Per-sensor views alias the canonical buffers (writing through the
    bank or through ``arrays.levels_j`` is the same write); per-cluster
    and per-RV blocks are owned here and refreshed by their components.

    Args:
        n_sensors: sensor population.
        n_rvs: fleet size.
        instruments: optional :class:`repro.obs.Instruments`; the
            ``sim.soa.alloc`` counter records every buffer
            (re)allocation so tests can prove the steady-state tick
            allocates nothing.
    """

    def __init__(self, n_sensors: int, n_rvs: int, instruments=None) -> None:
        from ..obs.instruments import NULL_INSTRUMENTS

        obs = instruments if instruments is not None else NULL_INSTRUMENTS
        self._c_alloc = obs.counter("sim.soa.alloc")
        self.n = int(n_sensors)
        # -- per-sensor aliases (bound by SimulationState / components) --
        self.positions: Optional[np.ndarray] = None
        self.levels_j: Optional[np.ndarray] = None
        self.rates_w: Optional[np.ndarray] = None
        self.active: Optional[np.ndarray] = None
        self.requested: Optional[np.ndarray] = None
        self.cluster_id: Optional[np.ndarray] = None
        # -- per-cluster rotation state (owned; see ensure_clusters) ----
        self.members = np.empty((0, 0), dtype=np.int64)
        self.sizes = np.empty(0, dtype=np.int64)
        self.ptr = np.empty(0, dtype=np.int64)
        # -- per-RV motion state (write-through from FleetController) ---
        self._c_alloc.inc(4)
        self.rv_pos = np.zeros((n_rvs, 2), dtype=np.float64)
        self.rv_level_j = np.zeros(n_rvs, dtype=np.float64)
        self.rv_busy = np.zeros(n_rvs, dtype=bool)
        self.rv_returning = np.zeros(n_rvs, dtype=bool)
        # -- preallocated scratch -----------------------------------------
        self._c_alloc.inc(3)
        self.drain_scratch = np.empty(self.n, dtype=np.float64)
        self.below_scratch = np.empty(self.n, dtype=bool)
        self.release_scratch = np.empty(self.n, dtype=bool)
        self._cluster_scratch: Tuple[np.ndarray, ...] = ()

    # -- cluster buffers ---------------------------------------------------

    def ensure_clusters(self, n_clusters: int, width: int) -> None:
        """Size the padded member matrix for a new cluster epoch.

        Buffers are reallocated only when the epoch needs *more* room
        (the alloc counter records it); a same-shape epoch reuses them.
        """
        if self.members.shape != (n_clusters, width):
            self._c_alloc.inc(3)
            self.members = np.full((n_clusters, width), -1, dtype=np.int64)
            self.sizes = np.zeros(n_clusters, dtype=np.int64)
            self.ptr = np.zeros(n_clusters, dtype=np.int64)
        else:
            self.members.fill(-1)
            self.sizes.fill(0)
            self.ptr.fill(0)
        if not self._cluster_scratch or self._cluster_scratch[0].shape != (
            n_clusters,
            width,
        ):
            self._c_alloc.inc(4)
            self._cluster_scratch = (
                np.empty((n_clusters, width), dtype=np.int64),
                np.empty((n_clusters, width), dtype=bool),
                np.arange(width, dtype=np.int64),
                np.arange(n_clusters, dtype=np.int64),
            )

    def needy_count_scratch(self, n_clusters: int) -> np.ndarray:
        """A reusable ``(m,)`` int64 buffer for per-cluster reductions."""
        buf = getattr(self, "_needy_scratch", None)
        if buf is None or buf.shape != (n_clusters,):
            self._c_alloc.inc()
            buf = np.empty(n_clusters, dtype=np.int64)
            self._needy_scratch = buf
        return buf


def pack_clusters(cluster_set, arrays: StateArrays) -> None:
    """Pack a :class:`~repro.core.clustering.ClusterSet` into the
    rectangular ``(members, sizes, ptr)`` block of ``arrays``.

    Members stay in their per-cluster sorted order (the rotation order
    of Section III-C); rows are padded with ``-1`` and the rotation
    pointers reset to slot 0, exactly as a fresh reference activator
    would start.
    """
    sizes = cluster_set.sizes()
    width = int(sizes.max()) if len(sizes) else 0
    arrays.ensure_clusters(len(cluster_set), width)
    arrays.sizes[:] = sizes
    for c in cluster_set:  # once per relocation epoch, not per tick
        if c.size:
            arrays.members[c.cluster_id, : c.size] = c.members
    arrays.cluster_id = cluster_set.membership


# --------------------------------------------------------------------------
# rotation kernels
# --------------------------------------------------------------------------


def _rotation_scores(
    members: np.ndarray,
    sizes: np.ndarray,
    start: np.ndarray,
    alive: np.ndarray,
    scratch=None,
) -> np.ndarray:
    """Rotation distance from ``start`` per member slot, ``w`` if dead.

    ``rel[c, j] = (j - start[c]) % size[c]`` for slots holding an alive
    member, the sentinel ``w`` (one past any real distance) for padded
    or depleted slots.  ``rel.argmin(axis=1)`` is then exactly the
    reference ``_first_alive_from`` answer: the alive slot with the
    smallest wrapping distance at or after ``start``.  Distances within
    a row are distinct, so the argmin is unambiguous.

    With ``scratch`` (the :class:`StateArrays` cluster scratch tuple)
    the whole computation runs in preallocated ``(m, w)`` buffers.
    """
    m, w = members.shape
    if scratch is not None:
        rel, ok, offs, _rows = scratch
    else:
        rel = np.empty((m, w), dtype=np.int64)
        ok = np.empty((m, w), dtype=bool)
        offs = np.arange(w, dtype=np.int64)
    np.greater_equal(members, 0, out=ok)  # padding slots hold -1
    np.logical_and(ok, alive[np.where(ok, members, 0)], out=ok)
    np.subtract(offs[None, :], start[:, None], out=rel)
    np.remainder(rel, np.maximum(sizes, 1)[:, None], out=rel)
    np.logical_not(ok, out=ok)
    np.copyto(rel, w, where=ok)
    return rel


def first_alive_slots(
    members: np.ndarray,
    sizes: np.ndarray,
    start: np.ndarray,
    alive: np.ndarray,
    scratch=None,
) -> np.ndarray:
    """Per cluster: the first alive member *slot* at or after ``start``.

    The vectorized form of the reference ``_first_alive_from`` scan:
    each row of ``members`` is scanned in wrapping rotation order from
    ``start``; the first slot whose member is alive wins, ``-1`` when
    the whole cluster is depleted (or empty).
    """
    m, w = members.shape
    if m == 0 or w == 0:
        return np.full(m, -1, dtype=np.int64)
    rel = _rotation_scores(members, sizes, start, alive, scratch)
    rows = scratch[3] if scratch is not None else np.arange(m, dtype=np.int64)
    slot = rel.argmin(axis=1)
    return np.where(rel[rows, slot] < w, slot, -1)


class SoARoundRobinActivator:
    """Array round-robin rotation, bit-exact to
    :class:`~repro.core.activation.RoundRobinActivator`.

    All per-cluster state lives in the ``(members, sizes, ptr)`` block
    of a :class:`StateArrays`; every query is a masked reduction over
    the padded member matrix.  With ``REPRO_DEBUG_SOA=1`` a shadow
    reference activator runs beside it and every result is compared
    bit-for-bit per tick.
    """

    rotates = True

    def __init__(self, cluster_set, arrays: StateArrays) -> None:
        self.cluster_set = cluster_set
        self.a = arrays
        if arrays.cluster_id is not cluster_set.membership:
            pack_clusters(cluster_set, arrays)  # not pre-packed by the caller
        self._shadow = RoundRobinActivator(cluster_set) if debug_soa() else None
        # Memoized active_sensor_per_cluster: the answer is a pure
        # function of (members, sizes, ptr, alive) — members/sizes only
        # change on a rebuild (fresh activator), ptr only in rotate()
        # (which refreshes the cache), so comparing alive *content* is a
        # complete invalidation check and far cheaper than the scan.
        self._actives: Optional[np.ndarray] = None
        self._actives_alive: Optional[np.ndarray] = None

    # -- queries -----------------------------------------------------------

    def active_sensor_per_cluster(self, alive: np.ndarray) -> np.ndarray:
        a = self.a
        if (
            self._shadow is None
            and self._actives is not None
            and np.array_equal(alive, self._actives_alive)
        ):
            return self._actives
        slots = first_alive_slots(
            a.members, a.sizes, a.ptr, alive, scratch=a._cluster_scratch
        )
        out = _members_at(a.members, slots, scratch=a._cluster_scratch)
        if self._shadow is not None:
            _shadow_compare(
                "active_sensor_per_cluster",
                out,
                self._shadow.active_sensor_per_cluster(alive),
            )
        else:
            self._actives = out
            self._actives_alive = alive.copy()
        return out

    def active_mask(self, alive: np.ndarray) -> np.ndarray:
        mask = np.zeros(self.cluster_set.n_sensors, dtype=bool)
        actives = self.active_sensor_per_cluster(alive)
        mask[actives[actives >= 0]] = True
        if self._shadow is not None:
            _shadow_compare("active_mask", mask, self._shadow.active_mask(alive))
        return mask

    def covered_mask(self, alive: np.ndarray) -> np.ndarray:
        return self.active_sensor_per_cluster(alive) >= 0

    # -- rotation ----------------------------------------------------------

    def rotate(self, alive: np.ndarray) -> np.ndarray:
        """Advance every cluster's pointer one slot; returns the
        ``(k, 2)`` hand-off pairs in cluster-id order (the reference
        append order)."""
        a = self.a
        m, w = a.members.shape
        if m == 0 or w == 0:
            return np.empty((0, 2), dtype=np.int64)
        # One score pass answers both reference scans: the current duty
        # holder is the distance argmin; masking it out, the runner-up
        # is the first alive member after it (wrapping), and a cluster
        # whose only alive member holds the duty keeps it (the
        # reference walk comes back around to ``cur``).
        rel = _rotation_scores(a.members, a.sizes, a.ptr, alive, a._cluster_scratch)
        rows = a._cluster_scratch[3]
        cur = rel.argmin(axis=1)
        live = rel[rows, cur] < w
        rel[rows, cur] = w
        nxt = rel.argmin(axis=1)
        nxt = np.where(rel[rows, nxt] < w, nxt, cur)
        cur = np.where(live, cur, -1)
        nxt = np.where(live, nxt, -1)
        # Reference pointer update: nxt if alive successor else stay on
        # cur; clusters with no alive member keep their old pointer.
        a.ptr[live] = nxt[live]
        moved = live & (nxt != cur)
        idx = np.flatnonzero(moved)
        if idx.size:
            handoffs = np.stack(
                [
                    a.members[idx, cur[idx]],
                    a.members[idx, nxt[idx]],
                ],
                axis=1,
            )
        else:
            handoffs = np.empty((0, 2), dtype=np.int64)
        if self._shadow is not None:
            ref = self._shadow.rotate(alive)
            _shadow_compare("rotate.handoffs", handoffs, ref)
            _shadow_compare("rotate.ptr", a.ptr, self._shadow._ptr)
        else:
            # Refresh the memo for the alive mask just rotated under:
            # live clusters now point at their (alive) duty holder.
            self._actives = _members_at(
                a.members,
                np.where(live, a.ptr, -1),
                scratch=a._cluster_scratch,
            )
            self._actives_alive = alive.copy()
        return handoffs


class SoAFullTimeActivator:
    """Array full-time activation, bit-exact to
    :class:`~repro.core.activation.FullTimeActivator`."""

    rotates = False

    def __init__(self, cluster_set, arrays: StateArrays) -> None:
        self.cluster_set = cluster_set
        self.a = arrays
        if arrays.cluster_id is not cluster_set.membership:
            pack_clusters(cluster_set, arrays)  # not pre-packed by the caller
        self._shadow = FullTimeActivator(cluster_set) if debug_soa() else None
        # Same memo as the round-robin twin, minus the rotation hook:
        # full-time duty has no pointer, so (members, alive) is the
        # whole dependency set.
        self._actives: Optional[np.ndarray] = None
        self._actives_alive: Optional[np.ndarray] = None

    def active_mask(self, alive: np.ndarray) -> np.ndarray:
        return self.cluster_set.clustered_mask() & alive

    def active_sensor_per_cluster(self, alive: np.ndarray) -> np.ndarray:
        a = self.a
        if (
            self._shadow is None
            and self._actives is not None
            and np.array_equal(alive, self._actives_alive)
        ):
            return self._actives
        zeros = np.zeros(len(a.sizes), dtype=np.int64)
        out = _members_at(
            a.members,
            first_alive_slots(
                a.members, a.sizes, zeros, alive, scratch=a._cluster_scratch
            ),
            scratch=a._cluster_scratch,
        )
        if self._shadow is not None:
            _shadow_compare(
                "active_sensor_per_cluster",
                out,
                self._shadow.active_sensor_per_cluster(alive),
            )
        else:
            self._actives = out
            self._actives_alive = alive.copy()
        return out

    def covered_mask(self, alive: np.ndarray) -> np.ndarray:
        return self.active_sensor_per_cluster(alive) >= 0

    def rotate(self, alive: np.ndarray) -> np.ndarray:
        return np.empty((0, 2), dtype=np.int64)


def _shadow_compare(label: str, soa, ref) -> None:
    """``REPRO_DEBUG_SOA``: the array result must equal the reference."""
    if not np.array_equal(np.asarray(soa), np.asarray(ref)):
        raise AssertionError(
            f"SoA tick engine diverged from the object-walking reference "
            f"on {label!r} (REPRO_DEBUG_SOA): {soa!r} != {ref!r}; "
            f"please report this"
        )


def _members_at(members: np.ndarray, slots: np.ndarray, scratch=None) -> np.ndarray:
    """Gather ``members[c, slots[c]]`` rowwise; ``-1`` slots stay -1."""
    if members.shape[1] == 0:
        return np.full(len(slots), -1, dtype=np.int64)
    rows = (
        scratch[3]
        if scratch is not None
        else np.arange(members.shape[0], dtype=np.int64)
    )
    picked = members[rows, np.maximum(slots, 0)]
    return np.where(slots >= 0, picked, -1)


def wrap_activator(activator, arrays: Optional[StateArrays]):
    """Swap a freshly built reference activator for its SoA equivalent.

    Only the two built-in schemes have array twins; anything else (a
    plugin activator) runs its own code unchanged.  Called by the
    cluster manager on every rebuild, so the rotation state starts from
    slot 0 exactly like a fresh reference activator.
    """
    if arrays is None:
        return activator
    if type(activator) is RoundRobinActivator:
        return SoARoundRobinActivator(activator.cluster_set, arrays)
    if type(activator) is FullTimeActivator:
        return SoAFullTimeActivator(activator.cluster_set, arrays)
    return activator


# --------------------------------------------------------------------------
# ERC gate scan
# --------------------------------------------------------------------------


def erc_release_scan(
    membership: np.ndarray,
    sizes: np.ndarray,
    below: np.ndarray,
    listed: np.ndarray,
    erp: float,
    arrays: Optional[StateArrays] = None,
) -> List[int]:
    """Array form of the ERC gate: sensors allowed to request *now*.

    Per cluster the needy count (``below`` members, listed or not) is a
    ``bincount`` reduction; a cluster releases every needy non-listed
    member iff the count reaches ``max(ceil(nc * K), 1)``; unclustered
    needy sensors always release.  Output is ascending sensor ids —
    exactly the reference's ``sorted(release)``.
    """
    m = len(sizes)
    clustered = membership >= 0
    needy = below & clustered
    if arrays is not None:
        counts = arrays.needy_count_scratch(m)
        counts.fill(0)
        np.add.at(counts, membership[needy], 1)
    else:
        counts = np.bincount(membership[needy], minlength=m)
    # Same elementwise arithmetic as release_count_needed: nc * K is one
    # float64 multiply either way, then ceil, then the floor of 1.
    need = np.maximum(np.ceil(sizes * erp).astype(np.int64), 1)
    open_gate = counts >= need
    if arrays is not None:
        release = np.logical_and(below, ~listed, out=arrays.release_scratch)
    else:
        release = below & ~listed
    if m:  # a zero-cluster epoch leaves every sensor unclustered
        release &= ~clustered | open_gate[np.maximum(membership, 0)]
    return [int(s) for s in np.flatnonzero(release)]


def erc_scan_applicable(erc) -> bool:
    """The array scan replays exactly the *base* gate semantics; a
    policy that overrides ``nodes_to_release`` gets the reference path."""
    return (
        type(erc).nodes_to_release is EnergyRequestController.nodes_to_release
    )


# --------------------------------------------------------------------------
# relay-load accumulation
# --------------------------------------------------------------------------


def relay_levels(parent: np.ndarray, dist: np.ndarray, base: int, n: int) -> List[np.ndarray]:
    """Hop-depth level schedule for the relay tree accumulation.

    Vertices are grouped by hop count from the base, deepest level
    first, excluding the base and disconnected vertices.  Computed once
    per routing tree (the topology is static).
    """
    order = np.argsort(dist, kind="stable")
    hops = np.full(len(parent), -1, dtype=np.int64)
    hops[base] = 0
    for v in order:
        p = parent[v]
        if p >= 0 and hops[p] >= 0:
            hops[v] = hops[p] + 1
    hops[base] = -1  # the base never forwards
    max_hop = int(hops.max()) if len(hops) else 0
    return [
        np.flatnonzero(hops == d) for d in range(max_hop, 0, -1)
    ]


def relay_accumulate(
    cnt: np.ndarray, parent: np.ndarray, levels: List[np.ndarray]
) -> None:
    """Push integer packet counts down the routing tree, level by level.

    Bit-exact to the reference farthest-first walk: counts are int64,
    integer addition is associative, and every vertex's count is final
    before its level is pushed (children sit strictly deeper than their
    parents in a shortest-path tree).  ``cnt`` is modified in place.
    """
    for lvl in levels:
        np.add.at(cnt, parent[lvl], cnt[lvl])
