"""Tests for repro.obs.monitors: the runtime invariant tripwires.

Each check is exercised on synthetic inputs (one firing case, one clean
case), strict mode is verified to raise, and — the acceptance bar — a
fixed-seed run under strict monitors completes with zero violations for
every registered scheduler.
"""

import numpy as np
import pytest

from repro.obs import (
    Instruments,
    InvariantViolation,
    MonitorSet,
    NULL_MONITORS,
    SpanTracer,
)
from repro.obs.monitors import strict_monitors_default
from repro.registry import SCHEDULERS
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


class FakePlan:
    def __init__(self, node_ids, travel_m=10.0, demand_j=50.0):
        self.node_ids = tuple(node_ids)
        self.travel_m = travel_m
        self.demand_j = demand_j


class FakeView:
    def __init__(self, budget_j=1000.0, em_j_per_m=5.6, charge_efficiency=1.0):
        self.rv_id = 0
        self.budget_j = budget_j
        self.em_j_per_m = em_j_per_m
        self.charge_efficiency = charge_efficiency


def monitors(**kwargs):
    kwargs.setdefault("strict", False)
    return MonitorSet(instruments=Instruments(), **kwargs)


class TestStrictDefault:
    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT_MONITORS", raising=False)
        assert not strict_monitors_default()
        monkeypatch.setenv("REPRO_STRICT_MONITORS", "0")
        assert not strict_monitors_default()
        monkeypatch.setenv("REPRO_STRICT_MONITORS", "1")
        assert strict_monitors_default()
        assert MonitorSet(instruments=Instruments()).strict


class TestBatteryBounds:
    def test_clean(self):
        m = monitors()
        m.check_battery_bounds(np.array([0.0, 50.0, 100.0]), 100.0, t=1.0)
        assert m.violations == []

    def test_fires_below_and_above(self):
        m = monitors()
        m.check_battery_bounds(np.array([-1.0, 50.0, 101.0]), 100.0, t=2.0)
        assert len(m.violations) == 1
        v = m.violations[0]
        assert v["invariant"] == "battery_bounds"
        assert v["sensors"] == [0, 2]
        assert m.instruments.counter("monitors.violations").value == 1

    def test_strict_raises(self):
        m = monitors(strict=True)
        with pytest.raises(InvariantViolation, match="battery_bounds"):
            m.check_battery_bounds(np.array([-1.0]), 100.0, t=0.0)


class TestEnergyConservation:
    def test_clean_exact_drain(self):
        m = monitors()
        before = np.array([100.0, 80.0])
        rates = np.array([0.5, 0.25])
        after = before - rates * 10.0
        m.check_energy_conservation(before, after, rates, dt=10.0, t=10.0)
        assert m.violations == []

    def test_clamped_at_zero_allowed(self):
        m = monitors()
        before = np.array([2.0])
        rates = np.array([1.0])  # analytic drop 10 J; only 2 J were left
        m.check_energy_conservation(before, np.array([0.0]), rates, dt=10.0, t=10.0)
        assert m.violations == []

    def test_fires_on_divergence(self):
        m = monitors()
        before = np.array([100.0])
        rates = np.array([0.5])
        m.check_energy_conservation(before, np.array([90.0]), rates, dt=10.0, t=10.0)
        assert [v["invariant"] for v in m.violations] == ["energy_conservation"]

    def test_fires_on_clamped_gain(self):
        # A clamped sensor may drop less than rate*dt, never gain.
        m = monitors()
        m.check_energy_conservation(
            np.array([-1.0]), np.array([0.0]), np.array([1.0]), dt=1.0, t=1.0
        )
        assert len(m.violations) == 1


class _Cluster:
    def __init__(self, cluster_id, members):
        self.cluster_id = cluster_id
        self.members = np.asarray(members, dtype=int)

    @property
    def size(self):
        return len(self.members)


class _ClusterSet:
    def __init__(self, clusters, n_sensors):
        self._clusters = clusters
        self._n = n_sensors

    def __iter__(self):
        return iter(self._clusters)

    def clustered_mask(self):
        mask = np.zeros(self._n, dtype=bool)
        for c in self._clusters:
            mask[c.members] = True
        return mask


class TestErcRelease:
    """Re-derives max(ceil(nc*K), 1) against the gate's actual output."""

    def setup_method(self):
        # Cluster 0: sensors 0-3; cluster 1: sensors 4-6; sensor 7 free.
        self.cs = _ClusterSet(
            [_Cluster(0, [0, 1, 2, 3]), _Cluster(1, [4, 5, 6])], 8
        )

    def test_clean_gate_open(self):
        m = monitors()
        below = np.array([1, 1, 0, 0, 0, 0, 0, 1], dtype=bool)
        listed = np.zeros(8, dtype=bool)
        # erp=0.5 -> cluster 0 needs ceil(4*0.5)=2 needy; has 2 -> release
        # both; cluster 1 has none; sensor 7 is unclustered and needy.
        m.check_erc_release(self.cs, below, listed, [0, 1, 7], erp=0.5, t=0.0)
        assert m.violations == []

    def test_clean_gate_closed(self):
        m = monitors()
        below = np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=bool)
        listed = np.zeros(8, dtype=bool)
        m.check_erc_release(self.cs, below, listed, [], erp=0.5, t=0.0)
        assert m.violations == []

    def test_fires_on_premature_release(self):
        m = monitors()
        below = np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=bool)
        listed = np.zeros(8, dtype=bool)
        m.check_erc_release(self.cs, below, listed, [0], erp=0.5, t=0.0)
        assert [v["invariant"] for v in m.violations] == ["erc_release"]

    def test_fires_on_partial_release(self):
        m = monitors()
        below = np.array([1, 1, 0, 0, 0, 0, 0, 0], dtype=bool)
        listed = np.zeros(8, dtype=bool)
        m.check_erc_release(self.cs, below, listed, [0], erp=0.5, t=0.0)
        assert len(m.violations) == 1

    def test_listed_members_not_re_released(self):
        m = monitors()
        below = np.array([1, 1, 0, 0, 0, 0, 0, 0], dtype=bool)
        listed = np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=bool)
        m.check_erc_release(self.cs, below, listed, [1], erp=0.5, t=0.0)
        assert m.violations == []

    def test_fires_on_missed_unclustered(self):
        m = monitors()
        below = np.array([0, 0, 0, 0, 0, 0, 0, 1], dtype=bool)
        listed = np.zeros(8, dtype=bool)
        m.check_erc_release(self.cs, below, listed, [], erp=0.5, t=0.0)
        assert [v["invariant"] for v in m.violations] == ["erc_release"]


class TestPlanCapacity:
    def test_clean(self):
        m = monitors()
        m.check_plan_capacity(FakePlan([1], travel_m=10.0, demand_j=50.0),
                              FakeView(budget_j=1000.0), t=0.0)
        assert m.violations == []

    def test_fires_over_budget(self):
        m = monitors()
        m.check_plan_capacity(FakePlan([1], travel_m=200.0, demand_j=50.0),
                              FakeView(budget_j=1000.0), t=0.0)
        assert [v["invariant"] for v in m.violations] == ["rv_capacity"]

    def test_efficiency_inflates_cost(self):
        m = monitors()
        view = FakeView(budget_j=110.0, em_j_per_m=1.0, charge_efficiency=0.5)
        # travel 10 + 50/0.5 = 110 J: exactly at budget, clean.
        m.check_plan_capacity(FakePlan([1], 10.0, 50.0), view, t=0.0)
        assert m.violations == []
        m.check_plan_capacity(FakePlan([1], 11.0, 50.0), view, t=0.0)
        assert len(m.violations) == 1


class TestAtomicService:
    NODE_CLUSTER = {1: 0, 2: 0, 3: 1, 4: -1}
    BACKLOG = {0: 2, 1: 1}

    def test_clean_whole_clusters(self):
        m = monitors()
        m.check_atomic_service(FakePlan([1, 2, 3, 4]), self.NODE_CLUSTER,
                               self.BACKLOG, t=0.0)
        assert m.violations == []

    def test_fires_on_split_cluster(self):
        m = monitors()
        m.check_atomic_service(FakePlan([1, 3]), self.NODE_CLUSTER,
                               self.BACKLOG, t=0.0, rv_id=2)
        assert [v["invariant"] for v in m.violations] == ["atomic_cluster_service"]
        assert m.violations[0]["cluster_id"] == 0

    def test_unclustered_nodes_ignored(self):
        m = monitors()
        m.check_atomic_service(FakePlan([4]), self.NODE_CLUSTER,
                               self.BACKLOG, t=0.0)
        assert m.violations == []


class TestPlumbing:
    def test_summary_groups_by_invariant(self):
        m = monitors()
        m.check_battery_bounds(np.array([-1.0]), 10.0, t=0.0)
        m.check_battery_bounds(np.array([-2.0]), 10.0, t=1.0)
        m.check_plan_capacity(FakePlan([1], 1e6, 0.0), FakeView(), t=2.0)
        s = m.summary()
        assert s["total"] == 3
        assert s["by_invariant"] == {"battery_bounds": 2, "rv_capacity": 1}

    def test_violations_emit_span_events(self):
        tracer = SpanTracer()
        m = MonitorSet(instruments=Instruments(), spans=tracer, strict=False)
        with tracer.span("tick"):
            m.check_battery_bounds(np.array([-1.0]), 10.0, t=3.0)
        (ev,) = tracer.to_rows()[0]["events"]
        assert ev["name"] == "invariant.violation"
        assert ev["invariant"] == "battery_bounds"
        assert ev["t_sim"] == 3.0

    def test_clean_run_counter_is_explicit_zero(self):
        obs = Instruments()
        MonitorSet(instruments=obs, strict=False)
        assert obs.snapshot()["counters"]["monitors.violations"] == 0.0

    def test_null_monitors_are_noops(self):
        NULL_MONITORS.check_battery_bounds(np.array([-5.0]), 1.0, t=0.0)
        NULL_MONITORS.check_plan_capacity(FakePlan([1], 1e9, 1e9), FakeView(), 0.0)
        assert not NULL_MONITORS.enabled
        assert list(NULL_MONITORS.violations) == []
        assert NULL_MONITORS.summary() == {"total": 0, "by_invariant": {}}


TINY = dict(
    n_sensors=40,
    n_targets=3,
    n_rvs=2,
    side_length_m=60.0,
    sim_time_s=0.2 * DAY_S,
    battery_capacity_j=400.0,
    initial_charge_range=(0.4, 0.7),
    dispatch_period_s=1800.0,
    erp=0.4,
    seed=7,
)


class TestStrictRunAllSchedulers:
    """Acceptance: a strict-monitor run is clean for every scheduler."""

    @pytest.mark.parametrize("name", sorted(SCHEDULERS.names()))
    def test_zero_violations(self, name):
        cfg = SimulationConfig(**dict(TINY, scheduler=name))
        obs = Instruments()
        mon = MonitorSet(instruments=obs, strict=True)
        world = World(cfg, instruments=obs, monitors=mon)
        world.run()  # InvariantViolation would propagate
        assert mon.violations == []
        assert obs.snapshot()["counters"]["monitors.violations"] == 0.0

    def test_monitored_run_matches_plain_run(self):
        cfg = SimulationConfig(**TINY)
        plain = World(cfg).run()
        mon = MonitorSet(instruments=Instruments(), strict=True)
        monitored = World(cfg, monitors=mon).run()
        assert monitored.as_dict() == plain.as_dict()
