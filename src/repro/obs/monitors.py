"""Runtime invariant monitors: the simulation's tripwires.

The paper's correctness rests on a handful of invariants that flat
end-of-run counters cannot see being broken mid-run:

* **energy conservation** — every battery's drop over a tick equals
  ``rate * dt`` (up to the clamp at empty and float tolerance);
* **battery bounds** — ``0 <= level <= capacity`` always;
* **ERC release threshold** — a cluster's requests are released iff at
  least ``max(ceil(nc * K), 1)`` members sit below threshold
  (Section III-B), and then *all* needy non-listed members release;
* **atomic cluster service** — schedulers that advertise
  ``atomic_cluster_service`` (the Algorithm 3 insertion family) never
  split a cluster's pending requests across a plan boundary;
* **RV capacity** — no plan's travel + delivery cost exceeds the RV's
  energy budget.

A :class:`MonitorSet` attaches to the simulation through the same state
hook as the instruments; components guard the extra work with
``monitors.enabled`` so the default :class:`NullMonitors` costs one
attribute load per touch point.  Violations are recorded on the
``violations`` list, counted under ``monitors.*`` instruments, emitted
as span events, and — with ``REPRO_STRICT_MONITORS=1`` (or
``strict=True``) — raised immediately as :class:`InvariantViolation`
so a broken run fails fast instead of producing a plausible table.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .instruments import NULL_INSTRUMENTS
from .spans import NULL_TRACER

__all__ = [
    "InvariantViolation",
    "MonitorSet",
    "NULL_MONITORS",
    "NullMonitors",
    "strict_monitors_default",
]


class InvariantViolation(AssertionError):
    """A runtime invariant did not hold (raised in strict mode)."""


def strict_monitors_default() -> bool:
    """``REPRO_STRICT_MONITORS=1``: fail fast on any violation."""
    return os.environ.get("REPRO_STRICT_MONITORS", "") not in ("", "0")


class MonitorSet:
    """The active invariant monitors for one run.

    Args:
        instruments: an :class:`~repro.obs.instruments.Instruments`
            registry for the ``monitors.*`` violation counters.
        spans: a :class:`~repro.obs.spans.SpanTracer`; violations are
            attached to the currently open span as events.
        strict: raise :class:`InvariantViolation` on the first
            violation.  ``None`` consults ``REPRO_STRICT_MONITORS``.
        blackbox: a :class:`~repro.obs.blackbox.BlackBoxRecorder`;
            violations are registered on it so a postmortem bundle
            carries them.

    ``REPRO_MONITOR_ATOL_J`` overrides the per-instance energy
    tolerance — its intended use is *forcing* a violation (a negative
    value trips the conservation check on the first advance without
    touching any state) to exercise the postmortem/replay pipeline
    end to end.
    """

    enabled = True

    #: Absolute slack (Joules) for per-sensor energy comparisons.
    ENERGY_ATOL_J = 1e-6
    #: Relative slack for energy comparisons.
    ENERGY_RTOL = 1e-9
    #: Absolute slack (Joules) for plan-cost feasibility.
    PLAN_ATOL_J = 1e-3

    def __init__(
        self,
        instruments=None,
        spans=None,
        strict: Optional[bool] = None,
        blackbox=None,
    ) -> None:
        self.instruments = instruments if instruments is not None else NULL_INSTRUMENTS
        self.spans = spans if spans is not None else NULL_TRACER
        self.strict = strict_monitors_default() if strict is None else bool(strict)
        self.blackbox = blackbox
        atol = os.environ.get("REPRO_MONITOR_ATOL_J")
        if atol is not None:
            self.ENERGY_ATOL_J = float(atol)
        self.violations: List[Dict[str, Any]] = []
        # Pre-create the total so a clean run's snapshot shows an
        # explicit zero (CI gates on it).
        self._c_total = self.instruments.counter("monitors.violations")

    # -- recording ----------------------------------------------------

    def _violate(self, invariant: str, message: str, t: float, **attrs: Any) -> None:
        record: Dict[str, Any] = {
            "invariant": invariant,
            "t": float(t),
            "message": message,
        }
        record.update(attrs)
        self.violations.append(record)
        self._c_total.inc()
        self.instruments.counter(f"monitors.{invariant}.violations").inc()
        self.spans.event(
            "invariant.violation", invariant=invariant, t_sim=float(t), message=message
        )
        if self.blackbox is not None and self.blackbox.enabled:
            self.blackbox.note_violation(record)
        if self.strict:
            raise InvariantViolation(f"[{invariant}] t={t:.1f}s: {message}")

    # -- checks --------------------------------------------------------

    def check_battery_bounds(
        self, levels_j: np.ndarray, capacity_j: float, t: float
    ) -> None:
        """``0 <= level <= capacity`` for every sensor battery."""
        tol = self.ENERGY_ATOL_J
        low = levels_j < -tol
        high = levels_j > capacity_j + tol
        if np.any(low) or np.any(high):
            bad = np.flatnonzero(low | high)
            self._violate(
                "battery_bounds",
                f"{bad.size} battery level(s) outside [0, {capacity_j:g}] "
                f"(sensors {bad[:5].tolist()}, "
                f"levels {levels_j[bad[:5]].tolist()})",
                t,
                sensors=bad[:10].tolist(),
            )

    def check_energy_conservation(
        self,
        levels_before_j: np.ndarray,
        levels_after_j: np.ndarray,
        rates_w: np.ndarray,
        dt: float,
        t: float,
    ) -> None:
        """Battery drops over an advance must equal ``rate * dt``.

        Sensors clamped at empty may drop *less* than the analytic
        drain; every other sensor must match within float tolerance.
        """
        drop = levels_before_j - levels_after_j
        expected = rates_w * dt
        tol = self.ENERGY_ATOL_J + self.ENERGY_RTOL * np.abs(expected)
        clamped = levels_after_j <= 0.0
        bad = np.abs(drop - expected) > tol
        # Clamped sensors: the drop is capped by what was left — it may
        # fall short of the analytic drain, but never go negative.
        bad &= ~(clamped & (drop >= -tol) & (drop <= expected + tol))
        if np.any(bad):
            idx = np.flatnonzero(bad)
            self._violate(
                "energy_conservation",
                f"{idx.size} battery drop(s) diverge from rate*dt over "
                f"dt={dt:g}s (sensors {idx[:5].tolist()}, "
                f"drop {drop[idx[:5]].tolist()} vs "
                f"expected {expected[idx[:5]].tolist()})",
                t,
                sensors=idx[:10].tolist(),
                dt=float(dt),
            )

    def check_erc_release(
        self,
        cluster_set,
        below_threshold: np.ndarray,
        already_requested: np.ndarray,
        released: Sequence[int],
        erp: float,
        t: float,
    ) -> None:
        """The ERC gate honored ``max(ceil(nc * K), 1)`` for every cluster.

        A cluster releases either every needy non-listed member (gate
        open: needy count at or above the threshold) or none (gate
        closed); unclustered needy sensors always release.
        """
        from ..core.erc import release_count_needed

        below = np.asarray(below_threshold, dtype=bool)
        listed = np.asarray(already_requested, dtype=bool)
        released_set = set(int(n) for n in released)
        for c in cluster_set:
            if c.size == 0:
                continue
            members = np.asarray(c.members)
            needy = members[below[members]]
            expected_open = len(needy) >= release_count_needed(c.size, erp)
            due = set(int(s) for s in needy if not listed[s])
            got = released_set & set(int(m) for m in members)
            if expected_open and got != due:
                self._violate(
                    "erc_release",
                    f"cluster {c.cluster_id} gate open "
                    f"({len(needy)}/{c.size} needy, erp={erp:g}) but released "
                    f"{sorted(got)} instead of {sorted(due)}",
                    t,
                    cluster_id=int(c.cluster_id),
                )
            elif not expected_open and got:
                self._violate(
                    "erc_release",
                    f"cluster {c.cluster_id} released {sorted(got)} with only "
                    f"{len(needy)}/{c.size} needy "
                    f"(threshold {release_count_needed(c.size, erp)}, erp={erp:g})",
                    t,
                    cluster_id=int(c.cluster_id),
                )
        unclustered = ~cluster_set.clustered_mask()
        due_uncl = set(
            int(s) for s in np.flatnonzero(unclustered & below & ~listed)
        )
        got_uncl = released_set & set(int(s) for s in np.flatnonzero(unclustered))
        if got_uncl != due_uncl:
            self._violate(
                "erc_release",
                f"unclustered release mismatch: {sorted(got_uncl)} "
                f"instead of {sorted(due_uncl)}",
                t,
            )

    def check_erc_release_arrays(
        self,
        membership: np.ndarray,
        sizes: np.ndarray,
        below_threshold: np.ndarray,
        already_requested: np.ndarray,
        released: Sequence[int],
        erp: float,
        t: float,
        cluster_set=None,
    ) -> None:
        """Array form of :meth:`check_erc_release` for the SoA engine.

        Re-derives the expected release set with one vectorized pass
        over the flat ``membership`` / ``sizes`` arrays (no per-cluster
        Python loop), so strict-monitor runs don't deoptimize the fast
        tick path.  On a mismatch it delegates to the per-cluster walk
        (when ``cluster_set`` is supplied) to produce the same detailed
        violation messages as the reference path.
        """
        from ..core.erc import release_count_needed

        membership = np.asarray(membership)
        below = np.asarray(below_threshold, dtype=bool)
        listed = np.asarray(already_requested, dtype=bool)
        m = len(sizes)
        clustered = membership >= 0
        needy = below & clustered
        counts = np.bincount(membership[needy], minlength=m)
        need = np.maximum(np.ceil(np.asarray(sizes) * erp).astype(np.int64), 1)
        open_gate = counts >= need
        expected = below & ~listed
        if m:  # a zero-cluster epoch leaves every sensor unclustered
            expected &= ~clustered | open_gate[np.maximum(membership, 0)]
        got = np.zeros(len(membership), dtype=bool)
        rel = np.asarray(list(released), dtype=np.int64)
        got[rel] = True
        if np.array_equal(expected, got):
            # Spot-check the vectorized threshold against the scalar
            # reference on one cluster so the re-derivation itself is
            # anchored (cheap: a single call).
            if m and int(need[0]) != release_count_needed(int(sizes[0]), erp):
                self._violate(
                    "erc_release",
                    f"array threshold {int(need[0])} != scalar "
                    f"release_count_needed({int(sizes[0])}, {erp:g})",
                    t,
                )
            return
        if cluster_set is not None:
            # Divergence: fall back to the slow walk for the detailed
            # per-cluster message the reference check would have given.
            self.check_erc_release(cluster_set, below, listed, released, erp, t)
            return
        diff = np.flatnonzero(expected != got)
        self._violate(
            "erc_release",
            f"release set mismatch on {diff.size} sensor(s) "
            f"(first {diff[:5].tolist()}; erp={erp:g})",
            t,
        )

    def check_plan_capacity(self, plan, view, t: float) -> None:
        """A planned sortie must fit the RV's energy budget."""
        cost = plan.travel_m * view.em_j_per_m + plan.demand_j / view.charge_efficiency
        if cost > view.budget_j + self.PLAN_ATOL_J:
            self._violate(
                "rv_capacity",
                f"RV {view.rv_id} plan costs {cost:.3f} J "
                f"(travel {plan.travel_m:.1f} m + demand {plan.demand_j:.1f} J) "
                f"over budget {view.budget_j:.3f} J",
                t,
                rv_id=int(view.rv_id),
            )

    def check_atomic_service(
        self,
        plan,
        node_cluster: Dict[int, int],
        backlog_per_cluster: Dict[int, int],
        t: float,
        rv_id: Optional[int] = None,
    ) -> None:
        """An insertion-family plan serves whole clusters or none of them.

        ``node_cluster`` maps each backlog node to its cluster at
        release time; ``backlog_per_cluster`` counts the backlog per
        cluster *before* the round's assignments.
        """
        served: Dict[int, int] = {}
        for node in plan.node_ids:
            cid = node_cluster.get(int(node), -1)
            if cid != -1:
                served[cid] = served.get(cid, 0) + 1
        for cid, count in served.items():
            total = backlog_per_cluster.get(cid, count)
            if 0 < count < total:
                self._violate(
                    "atomic_cluster_service",
                    f"plan serves {count}/{total} pending request(s) of "
                    f"cluster {cid}" + (f" (RV {rv_id})" if rv_id is not None else ""),
                    t,
                    cluster_id=int(cid),
                )

    def check_slo(
        self,
        rule: str,
        observed: float,
        threshold: float,
        t: float = 0.0,
        **attrs: Any,
    ) -> bool:
        """A service-level objective check (live telemetry plane).

        ``rule`` names the SLO (e.g. ``"pool.task_s:p99<=0.5"``);
        ``observed`` above ``threshold`` records an ``slo`` violation
        through the standard pipeline — the ``monitors.violations``
        counter, per-invariant counter, span event, and the strict
        fail-fast.  Returns True when the objective held.
        """
        if observed <= threshold:
            return True
        self._violate(
            "slo",
            f"SLO {rule}: observed {observed:.6g} > threshold {threshold:.6g}",
            t,
            rule=rule,
            observed=float(observed),
            threshold=float(threshold),
            **attrs,
        )
        return False

    # -- summary -------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Violation totals by invariant (JSON-friendly)."""
        by_invariant: Dict[str, int] = {}
        for v in self.violations:
            by_invariant[v["invariant"]] = by_invariant.get(v["invariant"], 0) + 1
        return {"total": len(self.violations), "by_invariant": by_invariant}

    def describe(self) -> Dict[str, Any]:
        """Strictness + tolerances, as stamped into postmortem bundles
        so a replay can arm identical tripwires without consulting the
        (possibly different) environment."""
        return {
            "strict": self.strict,
            "energy_atol_j": float(self.ENERGY_ATOL_J),
            "energy_rtol": float(self.ENERGY_RTOL),
            "plan_atol_j": float(self.PLAN_ATOL_J),
        }


class NullMonitors:
    """The zero-overhead fast path (mirrors ``NullInstruments``).

    ``enabled`` is False, so components skip the pre-copy work
    (battery snapshots, backlog maps) entirely; the check methods are
    still callable no-ops for defensive call sites.
    """

    enabled = False
    strict = False
    violations: Iterable[Dict[str, Any]] = ()

    def check_battery_bounds(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_energy_conservation(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_erc_release(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_erc_release_arrays(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_plan_capacity(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_atomic_service(self, *args: Any, **kwargs: Any) -> None:
        pass

    def check_slo(self, *args: Any, **kwargs: Any) -> bool:
        return True

    def summary(self) -> Dict[str, Any]:
        return {"total": 0, "by_invariant": {}}

    def describe(self) -> Dict[str, Any]:
        return {"strict": False}


#: The shared default; simulation state falls back to it when no
#: monitors are attached (one instance is enough — it holds no state).
NULL_MONITORS = NullMonitors()
