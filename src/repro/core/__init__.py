"""The paper's contribution: activity management and recharge scheduling."""

from .activation import FullTimeActivator, RoundRobinActivator
from .clustering import Cluster, ClusterSet, balanced_clustering, nearest_target_clustering
from .combined import CombinedScheduler
from .erc import (
    AdaptiveEnergyRequestController,
    EnergyRequestController,
    erc_travel_energy_bound,
    release_count_needed,
)
from .extensions import (
    DeadlineAwareScheduler,
    FCFSScheduler,
    NearestFirstScheduler,
    TwoOptInsertionScheduler,
)
from .greedy import GreedyScheduler, greedy_destination
from .insertion import InsertionScheduler, build_insertion_sequence, expand_stops
from .mip import (
    ExactSolution,
    FleetSolution,
    RechargeInstance,
    solve_exact_fleet,
    solve_exact_single_rv,
    verify_routes,
)
from .partition import PartitionScheduler, partition_requests
from .profit import (
    insertion_profit_delta,
    node_profits,
    route_profit,
    route_travel_cost,
    total_objective,
)
from .requests import (
    AggregatedRequest,
    RechargeNodeList,
    RechargeRequest,
    aggregate_by_cluster,
)
from .scheduling import PlannedRoute, RVView, Scheduler

__all__ = [
    "AdaptiveEnergyRequestController",
    "AggregatedRequest",
    "Cluster",
    "ClusterSet",
    "CombinedScheduler",
    "DeadlineAwareScheduler",
    "EnergyRequestController",
    "ExactSolution",
    "FCFSScheduler",
    "FleetSolution",
    "FullTimeActivator",
    "GreedyScheduler",
    "InsertionScheduler",
    "NearestFirstScheduler",
    "PartitionScheduler",
    "TwoOptInsertionScheduler",
    "PlannedRoute",
    "RVView",
    "RechargeInstance",
    "RechargeNodeList",
    "RechargeRequest",
    "RoundRobinActivator",
    "Scheduler",
    "aggregate_by_cluster",
    "balanced_clustering",
    "build_insertion_sequence",
    "erc_travel_energy_bound",
    "expand_stops",
    "greedy_destination",
    "insertion_profit_delta",
    "nearest_target_clustering",
    "node_profits",
    "partition_requests",
    "release_count_needed",
    "route_profit",
    "route_travel_cost",
    "solve_exact_fleet",
    "solve_exact_single_rv",
    "total_objective",
    "verify_routes",
]
