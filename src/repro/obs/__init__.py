"""repro.obs — the observability layer.

Instrumented runs answer *why* a result looks the way it does: named
counters, gauges, histograms and wall-clock phase timers
(:mod:`repro.obs.instruments`) are recorded by the simulation
components, exported through pluggable, registry-named formats
(:mod:`repro.obs.exporters`: ``jsonl``, ``prometheus``, ``csv``), and
archived with a provenance :class:`RunManifest`
(:mod:`repro.obs.manifest`).  ``repro report DIR`` renders an archived
directory back into tables (:mod:`repro.obs.report`).

The package deliberately never imports :mod:`repro.sim` — the
simulation state holds an ``instruments`` reference, so the dependency
points one way.  The run-level glue lives in
:func:`repro.sim.runner.run_with_telemetry`.

Quickstart::

    from repro import SimulationConfig
    from repro.sim.runner import run_with_telemetry

    summary, manifest = run_with_telemetry(
        SimulationConfig.small(), "telemetry_out"
    )
    # telemetry_out/ now holds manifest.json, events.jsonl,
    # metrics.jsonl, metrics.prom, series.csv, instruments.csv
"""

from .exporters import (
    DEFAULT_EXPORTERS,
    CsvExporter,
    JsonlExporter,
    PrometheusExporter,
    TelemetryBundle,
)
from .instruments import (
    NULL_INSTRUMENTS,
    Counter,
    Gauge,
    Histogram,
    Instruments,
    NullInstruments,
    PhaseTimer,
)
from .manifest import RunManifest, config_digest, git_revision
from .report import format_report, load_report

__all__ = [
    "Counter",
    "CsvExporter",
    "DEFAULT_EXPORTERS",
    "Gauge",
    "Histogram",
    "Instruments",
    "JsonlExporter",
    "NULL_INSTRUMENTS",
    "NullInstruments",
    "PhaseTimer",
    "PrometheusExporter",
    "RunManifest",
    "TelemetryBundle",
    "config_digest",
    "format_report",
    "git_revision",
    "load_report",
]
