"""Unit tests for repro.network.routing."""

import numpy as np
import pytest

from repro.network.routing import RoutingTree
from repro.network.topology import Topology


def make_tree(rng, n=50, side=40.0, rng_comm=10.0):
    pts = rng.uniform(0, side, size=(n, 2))
    topo = Topology(pts, comm_range=rng_comm, base_station=[side / 2, side / 2])
    return RoutingTree(topo)


class TestRoutingTree:
    def test_requires_base(self):
        topo = Topology(np.zeros((2, 2)), comm_range=1.0)
        with pytest.raises(ValueError):
            RoutingTree(topo)

    def test_path_reaches_base(self, rng):
        tree = make_tree(rng)
        for v in np.flatnonzero(tree.connected_mask()):
            path = tree.path_to_base(int(v))
            assert path[0] == v
            assert path[-1] == tree.base

    def test_path_lengths_decrease_toward_base(self, rng):
        tree = make_tree(rng)
        for v in np.flatnonzero(tree.connected_mask()):
            path = tree.path_to_base(int(v))
            d = [tree.dist[u] for u in path]
            assert all(d[i] > d[i + 1] for i in range(len(d) - 1))

    def test_disconnected_raises(self):
        pts = np.array([[0.0, 0.0], [100.0, 100.0]])
        topo = Topology(pts, comm_range=2.0, base_station=[0.0, 1.0])
        tree = RoutingTree(topo)
        assert tree.connected_mask().tolist() == [True, False]
        with pytest.raises(ValueError):
            tree.path_to_base(1)
        with pytest.raises(ValueError):
            tree.next_hop(1)

    def test_hop_counts(self):
        pts = np.column_stack([np.arange(1, 4) * 1.0, np.zeros(3)])
        topo = Topology(pts, comm_range=1.1, base_station=[0.0, 0.0])
        tree = RoutingTree(topo)
        assert tree.hop_counts().tolist() == [1, 2, 3]

    def test_hop_counts_disconnected(self):
        pts = np.array([[1.0, 0.0], [50.0, 0.0]])
        topo = Topology(pts, comm_range=1.5, base_station=[0.0, 0.0])
        tree = RoutingTree(topo)
        assert tree.hop_counts().tolist() == [1, -1]

    def test_next_hop_moves_closer(self, rng):
        tree = make_tree(rng)
        for v in np.flatnonzero(tree.connected_mask()):
            hop = tree.next_hop(int(v))
            assert tree.dist[hop] < tree.dist[v]
