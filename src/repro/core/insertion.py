"""Single-RV recharging-sequence construction (Algorithm 3).

The heuristic that replaces the greedy baseline:

1. Pick the max-profit node as the sortie's **destination** and open the
   route ``Q = [crt -> dest]``.
2. Repeatedly evaluate the *profit difference*
   ``p(s, n) = D(n) - em * delta_d(s)`` of inserting each unscheduled
   node ``n`` at each position ``s`` of the route, and perform the most
   profitable insertion as long as it is strictly positive and the RV
   can still afford the grown route.
3. Stop when no insertion is positive/affordable; the route is the RV's
   recharging sequence.

Scheduling operates on *aggregated* cluster super-nodes (Section IV-C):
a cluster's pending demands enter the route as one stop with the summed
demand, and the final sequence expands each cluster stop into the
paper's O(nc^2) nearest-neighbour member tour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..tsp.tour import leg_lengths
from . import kernels
from .requests import AggregatedRequest, RechargeNodeList, aggregate_by_cluster
from .scheduling import PlannedRoute, RVView

__all__ = ["InsertionScheduler", "build_insertion_sequence", "expand_stops"]


def build_insertion_sequence(
    stops: Sequence[AggregatedRequest],
    rv_position: np.ndarray,
    budget_j: float,
    em_j_per_m: float,
    charge_efficiency: float = 1.0,
) -> List[int]:
    """Algorithm 3 over super-nodes; returns stop indices in visit order.

    Args:
        stops: candidate super-nodes (aggregated requests).
        rv_position: the RV's current location (``crt``).
        budget_j: remaining sortie energy for travel plus delivery.
        em_j_per_m: traveling energy rate.
        charge_efficiency: delivering ``d`` costs ``d / efficiency``.

    Returns:
        Indices into ``stops``; empty if even the best destination is
        unaffordable.  The destination (first chosen, highest profit)
        is always the *last* element — insertions happen strictly
        between the RV and the destination.
    """
    n = len(stops)
    if n == 0 or budget_j <= 0:
        return []
    rv_position = np.asarray(rv_position, dtype=np.float64).reshape(2)
    positions = np.vstack([s.position for s in stops])
    demands = np.array([s.demand_j for s in stops], dtype=np.float64)
    # The shared cache measures stop/stop and RV/stop distances once per
    # scheduling event; every iteration below slices its gap geometry
    # out of the cached matrices.  ``np.hypot`` is sign-insensitive, so
    # the sliced values are bit-identical to a direct per-iteration
    # measurement either direction.
    cache = kernels.distance_cache_for(positions)
    dist0 = cache.from_point(rv_position)
    profits = kernels.profit_vector(demands, dist0, em_j_per_m)
    costs = em_j_per_m * dist0 + demands / charge_efficiency

    # Destination: best profit among affordable nodes (Alg. 3 line 2,
    # "Update RV's information to reserve energy for the dest node").
    dest = kernels.masked_argmax(profits, costs <= budget_j + 1e-9)
    if dest is None:
        return []

    route = [dest]  # stop indices; waypoint list is [rv] + route
    spent = costs[dest]
    remaining = [i for i in range(n) if i != dest]
    dmat = cache.pairwise if remaining else None

    inserted = True
    while inserted and remaining and spent < budget_j:
        inserted = False
        # Evaluate p(s, n) for every gap s and every remaining node n.
        # Gap s runs waypoint s -> waypoint s+1 of [rv] + route.
        p, extra_cost = kernels.insertion_eval(
            dmat, dist0, demands, route, remaining, em_j_per_m, charge_efficiency
        )
        feasible = (p > 1e-12) & (spent + extra_cost <= budget_j + 1e-9)
        pick = kernels.masked_argmax_2d(p, feasible)
        if pick is None:
            break
        s0, n0 = pick
        stop_idx = remaining.pop(n0)
        route.insert(s0, stop_idx)  # position s0 = after waypoint s0
        spent += float(extra_cost[s0, n0])
        inserted = True
    return route


def expand_stops(
    stops: Sequence[AggregatedRequest],
    order: Sequence[int],
    rv_position: np.ndarray,
) -> PlannedRoute:
    """Expand a super-node visit order into a sensor-level route.

    Each cluster stop unrolls into its nearest-neighbour member tour
    entered from wherever the RV last stood; travel and demand are then
    re-measured on the expanded polyline (the planner's centroid
    approximation is replaced by exact member positions).
    """
    rv_position = np.asarray(rv_position, dtype=np.float64).reshape(2)
    node_ids: List[int] = []
    waypoints = [rv_position]
    demand = 0.0
    entry = rv_position
    member_pos = {}
    for idx in order:
        stop = stops[idx]
        ordered_ids = stop.visit_order_from(entry)
        for r in stop.members:
            member_pos[r.node_id] = r.position
        for nid in ordered_ids:
            node_ids.append(nid)
            waypoints.append(member_pos[nid])
        demand += stop.demand_j
        entry = waypoints[-1]
    wp = np.vstack(waypoints)
    travel = float(leg_lengths(wp).sum()) if len(wp) > 1 else 0.0
    return PlannedRoute(
        node_ids=tuple(node_ids),
        waypoints=wp,
        travel_m=travel,
        demand_j=demand,
        profit_j=demand - 0.0,  # caller overwrites with its em; see plan()
    )


def plan_single_rv(
    requests: Sequence,
    rv: RVView,
) -> Optional[PlannedRoute]:
    """Plan one recharging sequence for one RV (cluster-aware).

    The insertion feasibility check prices a cluster at its centroid;
    after expanding each cluster into its member tour the route is
    re-measured against the budget, and trailing stops are trimmed if
    the expansion overran it — constraint (7) holds on the *actual*
    route, not the approximation.
    """
    stops = aggregate_by_cluster(requests)
    order = build_insertion_sequence(
        stops, rv.position, rv.budget_j, rv.em_j_per_m, rv.charge_efficiency
    )
    kept = list(order)
    route = None
    while kept:
        route = expand_stops(stops, kept, rv.position)
        cost = route.travel_m * rv.em_j_per_m + route.demand_j / rv.charge_efficiency
        if cost <= rv.budget_j + 1e-6:
            break
        kept.pop()
        route = None
    if route is None:
        return None
    profit = route.demand_j - rv.em_j_per_m * route.travel_m
    return PlannedRoute(
        node_ids=route.node_ids,
        waypoints=route.waypoints,
        travel_m=route.travel_m,
        demand_j=route.demand_j,
        profit_j=profit,
    )


def plan_single_rv_chained(
    requests: List,
    rv: RVView,
) -> Optional[PlannedRoute]:
    """Repeat Algorithm 3 until the list or the RV budget is exhausted.

    "After the RV finishes its current recharging sequence, the
    algorithm is repeated until all the nodes in R are recharged"
    (Section IV-C) — successive sequences are planned from wherever the
    previous one ended, with whatever budget remains, and chained into
    one itinerary.  ``requests`` is consumed in place.
    """
    remaining = list(requests)
    position = rv.position
    budget = rv.budget_j
    chained_ids: List[int] = []
    waypoints = [np.asarray(position, dtype=np.float64).reshape(2)]
    total_travel = 0.0
    total_demand = 0.0
    while remaining and budget > 0:
        view = RVView(
            rv_id=rv.rv_id,
            position=position,
            budget_j=budget,
            em_j_per_m=rv.em_j_per_m,
            charge_efficiency=rv.charge_efficiency,
            depot=rv.depot,
        )
        plan = plan_single_rv(remaining, view)
        if plan is None or len(plan) == 0:
            break
        chained_ids.extend(plan.node_ids)
        waypoints.extend(plan.waypoints[1:])
        total_travel += plan.travel_m
        total_demand += plan.demand_j
        budget -= plan.travel_m * rv.em_j_per_m + plan.demand_j / rv.charge_efficiency
        position = plan.waypoints[-1]
        served = set(plan.node_ids)
        remaining = [r for r in remaining if r.node_id not in served]
    if not chained_ids:
        return None
    requests[:] = remaining
    return PlannedRoute(
        node_ids=tuple(chained_ids),
        waypoints=np.vstack(waypoints),
        travel_m=total_travel,
        demand_j=total_demand,
        profit_j=total_demand - rv.em_j_per_m * total_travel,
    )


class InsertionScheduler:
    """Online Algorithm 3 for a single RV (Section IV-C).

    With one RV this *is* the paper's single-RV algorithm; with several
    it behaves like the Combined-Scheme (each idle RV plans against
    what is left of the global list), which is why
    :class:`~repro.core.combined.CombinedScheduler` subclasses it.
    """

    name = "insertion"

    #: Algorithm 3 aggregates co-clustered requests into super-nodes and
    #: trims whole stops, so a plan serves each cluster's backlog
    #: entirely or not at all.  The invariant monitors
    #: (:mod:`repro.obs.monitors`) verify this for every scheduler that
    #: advertises it (subclasses inherit the claim).
    atomic_cluster_service = True

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        plans: Dict[int, PlannedRoute] = {}
        for rv in idle_rvs:
            snapshot = requests.snapshot()
            if not snapshot:
                break
            plan = plan_single_rv_chained(snapshot, rv)
            if plan is None or len(plan) == 0:
                continue
            plans[rv.rv_id] = plan
            requests.remove_many(plan.node_ids)
        return plans
