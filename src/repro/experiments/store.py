"""Content-addressed result store for sweep cells.

Where the legacy flat cache (``REPRO_CACHE``,
:mod:`repro.experiments.cache`) is a per-user scratch directory, the
:class:`ResultStore` is the durable, shareable layer the sweep service
is built on: a blob per cell addressed by the PR 3 versioned cache key
— the SHA-256 of the frozen configuration *plus* the package version
and git revision (:func:`repro.experiments.cache.config_key`).  Two
clients sweeping overlapping grids against one store deduplicate
automatically: identical ``(config, code)`` pairs map to the same key,
and ``put`` is a no-op once the blob exists.

Layout (git-style fan-out so directories stay small at fleet scale)::

    <root>/objects/<key[:2]>/<key>.json

Each blob carries the summary payload plus its own SHA-256, so a
truncated or bit-flipped blob is detected on read, counted
(``store.corrupt``), quarantined (unlinked) and treated as a miss —
never a crash.  Writes are atomic (tmp + rename), so concurrent
writers cannot corrupt each other.

Eviction is explicit and LRU: hits touch the blob's mtime, and
:meth:`evict` drops the oldest blobs until the store fits the given
entry/byte caps.

Opt in with ``REPRO_STORE=<dir>`` (the executor consults
:meth:`from_env`) or by passing a store instance to
``map_configs`` / ``map_cells`` / ``submit_grid``.  Unset, nothing is
created — not even the root directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, List, Optional

from ..obs.instruments import NULL_INSTRUMENTS
from ..obs.schema import STORE_STATS
from ..sim.config import SimulationConfig
from ..sim.metrics import SimulationSummary
from .cache import config_key, summary_from_dict

__all__ = ["ResultStore"]


def _payload_digest(summary_dict: Dict[str, float]) -> str:
    """The integrity hash stored inside each blob."""
    return hashlib.sha256(
        json.dumps(summary_dict, sort_keys=True).encode()
    ).hexdigest()


class ResultStore:
    """Content-addressed blob store for completed sweep cells.

    ``instruments`` (optional) records ``store.hits`` /
    ``store.misses`` / ``store.puts`` / ``store.dedup`` /
    ``store.corrupt`` counters; the same totals are always kept in
    :attr:`stats`.  Per-call ``instruments`` overrides on ``get`` /
    ``put`` let the executor route counts into a sweep's own registry.
    """

    def __init__(self, root, instruments=None) -> None:
        self.root = pathlib.Path(root)
        self._instruments = NULL_INSTRUMENTS if instruments is None else instruments
        # Keys come from the declared schema — the schema test asserts
        # this dict and STORE_STATS can never drift apart.
        self.stats: Dict[str, int] = STORE_STATS.new_stats()

    @classmethod
    def from_env(cls, instruments=None) -> Optional["ResultStore"]:
        """The store named by ``REPRO_STORE``, or None (disabled).

        No directory is created here — the root materializes on the
        first ``put``.
        """
        value = os.environ.get("REPRO_STORE", "").strip()
        if not value:
            return None
        return cls(value, instruments=instruments)

    # -- keys and paths -----------------------------------------------

    def key_for(self, config: SimulationConfig) -> str:
        """The cell's content address (config + code version digest)."""
        return config_key(config)

    def _blob_path(self, key: str) -> pathlib.Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _count(self, name: str, instruments, amount: int = 1) -> None:
        self.stats[name] += amount
        obs = self._instruments if instruments is None else instruments
        obs.counter(STORE_STATS.counter_name(name)).inc(amount)

    # -- read/write ---------------------------------------------------

    def get(
        self, config: SimulationConfig, instruments=None
    ) -> Optional[SimulationSummary]:
        """The stored summary for ``config``, or None on miss.

        A blob that fails to parse or whose integrity hash mismatches
        is quarantined (best-effort unlink), counted as
        ``store.corrupt`` *and* as a miss — corruption degrades to
        recomputation, never to an exception.
        """
        summary = self.get_by_key(self.key_for(config), instruments=instruments)
        return summary

    def get_by_key(
        self, key: str, instruments=None
    ) -> Optional[SimulationSummary]:
        """Like :meth:`get` for an already-computed content address."""
        path = self._blob_path(key)
        try:
            blob = json.loads(path.read_text())
            summary_dict = blob["summary"]
            if blob.get("sha256") != _payload_digest(summary_dict):
                raise ValueError("integrity hash mismatch")
            summary = summary_from_dict(summary_dict)
        except FileNotFoundError:
            self._count("misses", instruments)
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self._count("corrupt", instruments)
            self._count("misses", instruments)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hits", instruments)
        try:  # LRU bookkeeping: a hit refreshes the blob's mtime
            os.utime(path)
        except OSError:
            pass
        return summary

    def put(
        self,
        config: SimulationConfig,
        summary: SimulationSummary,
        instruments=None,
        source: Optional[str] = None,
    ) -> str:
        """Store a completed cell; returns its content address.

        Content addressing makes re-puts no-ops (``store.dedup``): the
        key pins config *and* code version, so an existing blob already
        holds this exact payload.  ``source`` records execution
        provenance (``"run"`` serial, ``"batch"`` the batched engine)
        in the blob — it is metadata only, outside the integrity hash,
        which stays a function of the summary payload alone.
        """
        key = self.key_for(config)
        path = self._blob_path(key)
        if path.exists():
            self._count("dedup", instruments)
            return key
        path.parent.mkdir(parents=True, exist_ok=True)
        summary_dict = summary.as_dict()
        blob = {
            "key": key,
            "summary": summary_dict,
            "sha256": _payload_digest(summary_dict),
        }
        if source is not None:
            blob["source"] = source
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(blob, sort_keys=True))
        tmp.replace(path)  # atomic on POSIX: concurrent writers can't corrupt
        self._count("puts", instruments)
        return key

    def __contains__(self, config: SimulationConfig) -> bool:
        return self._blob_path(self.key_for(config)).exists()

    # -- inventory and eviction ---------------------------------------

    def _blobs(self) -> List[pathlib.Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def keys(self) -> List[str]:
        """Every stored content address (sorted)."""
        return [p.stem for p in self._blobs()]

    def __len__(self) -> int:
        return len(self._blobs())

    def total_bytes(self) -> int:
        """Bytes of blob payload currently on disk."""
        return sum(p.stat().st_size for p in self._blobs())

    def describe(self) -> Dict[str, int]:
        """A JSON-friendly snapshot (entries, bytes, lifetime totals)."""
        return {"entries": len(self), "bytes": self.total_bytes(), **self.stats}

    def evict(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Drop least-recently-used blobs until both caps hold.

        Returns the number of blobs removed.  Use ``max_entries=0`` to
        clear the store.
        """
        if max_entries is None and max_bytes is None:
            return 0
        blobs = [(p.stat().st_mtime, p.stat().st_size, p) for p in self._blobs()]
        blobs.sort()  # oldest (least recently hit) first
        entries = len(blobs)
        total = sum(size for _, size, _ in blobs)
        removed = 0
        for _mtime, size, path in blobs:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                path.unlink()
            except OSError:
                continue
            entries -= 1
            total -= size
            removed += 1
        return removed
