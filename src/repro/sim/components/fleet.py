"""The recharging-vehicle fleet: dispatch rounds, sortie legs, returns.

:class:`FleetController` executes the online side of the scheduling
problem.  Each dispatch round snapshots the idle RVs as
:class:`~repro.core.scheduling.RVView` slices, hands the backlog to the
configured scheduler, and walks every assigned
:class:`~repro.core.scheduling.PlannedRoute` leg by leg through the
event engine: drive, park and charge to full, next stop, and back to
the depot to refill the sortie budget when the scheduler leaves an RV
unassigned while work remains.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional

import numpy as np

from ...core import kernels
from ...core.scheduling import RVView, Scheduler
from ...mobility.vehicles import RechargingVehicle
from ..trace import EventKind
from .energy import EnergyAccounting
from .gate import RequestGate
from .state import PRIO_RV, SimulationState

__all__ = ["FleetController"]

logger = logging.getLogger(__name__)


class FleetController:
    """Owns the RVs and drives their sorties through the event engine.

    Args:
        state: the shared simulation state.
        energy: the energy component (advanced before every state-
            changing RV event so batteries are current).
        gate: the request gate (backlog source; notified on recharges).
        scheduler: the route planner assigning sorties to idle RVs.
        on_change: optional callback fired after observable fleet state
            changes (the world samples metrics through it).
    """

    def __init__(
        self,
        state: SimulationState,
        energy: EnergyAccounting,
        gate: RequestGate,
        scheduler: Scheduler,
        on_change: Optional[Callable[[], None]] = None,
    ) -> None:
        self.s = state
        self.energy = energy
        self.gate = gate
        self.scheduler = scheduler
        self.on_change = on_change or (lambda: None)
        cfg = state.cfg
        self.rvs: List[RechargingVehicle] = [
            RechargingVehicle(
                rv_id=i,
                depot=state.field.base_station,
                speed_mps=cfg.rv_speed_mps,
                moving_cost_j_per_m=cfg.rv_moving_cost_j_per_m,
                capacity_j=cfg.rv_capacity_j,
            )
            for i in range(cfg.n_rvs)
        ]
        self.a = state.arrays
        if self.a is not None:
            # Under the SoA engine the returning flags ARE the array —
            # one buffer, two names — and every observable RV change is
            # written through to the per-RV block (rv_pos / rv_level_j
            # / rv_busy) so array readers never see a stale fleet.
            self.returning = self.a.rv_returning
            for rv in self.rvs:
                self._sync_rv(rv)
        else:
            self.returning = np.zeros(cfg.n_rvs, dtype=bool)
        obs = state.instruments
        self._sp = state.spans
        self._t_dispatch = obs.timer("fleet.dispatch")
        self._t_assign = obs.timer("scheduler.assign")
        # Which kernel path (numpy broadcasts vs reference loops) the
        # scheduler's inner decisions took — mirrors the incremental /
        # full recompute counters of the energy component.
        self._c_kernel_vec = obs.counter("scheduler.kernel.vectorized")
        self._c_kernel_ref = obs.counter("scheduler.kernel.reference")
        self._c_rounds = obs.counter("fleet.dispatch_rounds")
        self._c_sorties = obs.counter("fleet.sorties")
        self._c_legs = obs.counter("fleet.legs")
        self._c_depot_returns = obs.counter("fleet.depot_returns")
        self._h_sortie_stops = obs.histogram("fleet.sortie_stops")
        self._h_delivered = obs.histogram("fleet.delivered_j")
        self._rv_sorties = [obs.counter(f"fleet.rv{i}.sorties") for i in range(cfg.n_rvs)]
        self._rv_delivered = [
            obs.counter(f"fleet.rv{i}.delivered_j") for i in range(cfg.n_rvs)
        ]

    def _sync_rv(self, rv: RechargingVehicle) -> None:
        """Write-through one RV's observable state into the SoA block."""
        a = self.a
        if a is None:
            return
        a.rv_pos[rv.rv_id] = rv.position
        a.rv_level_j[rv.rv_id] = rv.battery.level_j
        a.rv_busy[rv.rv_id] = rv.busy

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def idle_views(self) -> List[RVView]:
        """Scheduler-facing views of the RVs available for assignment."""
        views = []
        for rv in self.rvs:
            if rv.busy or self.returning[rv.rv_id]:
                continue
            views.append(
                RVView(
                    rv_id=rv.rv_id,
                    position=rv.position,
                    budget_j=rv.battery.level_j,
                    em_j_per_m=rv.moving_cost_j_per_m,
                    charge_efficiency=self.s.cfg.charge_model.efficiency,
                    depot=rv.depot,
                )
            )
        return views

    def dispatch(self) -> None:
        """Hand pending requests to idle RVs via the scheduler."""
        s = self.s
        if len(s.requests) == 0:
            return
        views = self.idle_views()
        if not views:
            return
        with self._t_dispatch, self._sp.span(
            "fleet.dispatch", backlog=len(s.requests), idle_rvs=len(views)
        ):
            self._dispatch(views)

    def _dispatch(self, views: List[RVView]) -> None:
        s = self.s
        mon = s.monitors
        sp = self._sp
        self._c_rounds.inc()
        observe = getattr(self.scheduler, "observe_time", None)
        if observe is not None:
            observe(s.now)
        if mon.enabled or sp.enabled:
            # Backlog snapshot *before* assignment: chained schedulers
            # consume the request list in place.
            node_cluster = {int(r.node_id): int(r.cluster_id) for r in s.requests}
            backlog_per_cluster: Dict[int, int] = {}
            for cid in node_cluster.values():
                if cid != -1:
                    backlog_per_cluster[cid] = backlog_per_cluster.get(cid, 0) + 1
            views_by_id = {v.rv_id: v for v in views}
        calls_before = dict(kernels.KERNEL_CALLS)
        with self._t_assign, sp.span("scheduler.assign") as assign_span:
            plans = self.scheduler.assign(s.requests, views, s.rng)
        vec = kernels.KERNEL_CALLS["vectorized"] - calls_before["vectorized"]
        ref = kernels.KERNEL_CALLS["reference"] - calls_before["reference"]
        self._c_kernel_vec.inc(vec)
        self._c_kernel_ref.inc(ref)
        assign_span.set(
            scheduler=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            plans=len(plans),
            kernel_vectorized=vec,
            kernel_reference=ref,
        )
        logger.debug(
            "t=%.0fs: dispatch round, %d request(s), %d idle RV(s), %d sortie(s)",
            s.now, len(s.requests), len(views), len(plans),
        )
        if s.blackbox.enabled and plans:
            s.blackbox.note(
                "dispatched",
                {
                    str(rv_id): [int(n) for n in plan.node_ids]
                    for rv_id, plan in plans.items()
                },
            )
        atomic = getattr(self.scheduler, "atomic_cluster_service", False)
        for rv_id, plan in plans.items():
            if mon.enabled:
                mon.check_plan_capacity(plan, views_by_id[rv_id], s.now)
                if atomic:
                    mon.check_atomic_service(
                        plan, node_cluster, backlog_per_cluster, s.now, rv_id=rv_id
                    )
            rv = self.rvs[rv_id]
            rv.begin_sortie(list(plan.node_ids))
            self._sync_rv(rv)
            self._c_sorties.inc()
            self._rv_sorties[rv_id].inc()
            self._h_sortie_stops.observe(len(plan))
            if sp.enabled:
                sp.event(
                    "sortie.assigned",
                    rv_id=rv_id,
                    stops=len(plan),
                    profit_j=float(plan.profit_j),
                    travel_m=float(plan.travel_m),
                    clusters=sorted(
                        {node_cluster.get(int(n), -1) for n in plan.node_ids} - {-1}
                    ),
                )
            if s.trace.enabled:
                s.trace.emit(s.now, EventKind.SORTIE_ASSIGNED, rv_id, float(len(plan)))
            self._next_leg(rv)
        # Idle RVs that got nothing while work exists go home to refill
        # (an empty budget is the usual reason the scheduler skipped them).
        if len(s.requests) > 0:
            for view in self.idle_views():
                rv = self.rvs[view.rv_id]
                if rv.battery.level_j < rv.capacity_j - 1e-9 and not rv.at_depot:
                    self.send_home(rv)

    def _on_idle(self) -> None:
        """An RV became available: optionally run an extra round."""
        if self.s.cfg.dispatch_on_idle:
            self.gate.check()
            self.dispatch()

    # ------------------------------------------------------------------
    # depot returns
    # ------------------------------------------------------------------

    def send_home(self, rv: RechargingVehicle) -> None:
        """Send an RV back to the depot to refill its sortie budget."""
        self.returning[rv.rv_id] = True
        tt = rv.travel_time_to(rv.depot)
        self.s.sim.schedule_in(tt, lambda rv=rv: self._rv_home(rv), priority=PRIO_RV)

    def _rv_home(self, rv: RechargingVehicle) -> None:
        s = self.s
        self.energy.advance()
        rv.return_to_depot()
        self._sync_rv(rv)
        self._c_depot_returns.inc()
        if s.trace.enabled:
            s.trace.emit(s.now, EventKind.RV_RETURNED_HOME, rv.rv_id)
        if s.cfg.rv_depot_dwell_s > 0:
            # The RV stays docked (still "returning") while its own
            # battery refills at the base station.
            s.sim.schedule_in(
                s.cfg.rv_depot_dwell_s,
                lambda rv=rv: self._rv_ready(rv),
                priority=PRIO_RV,
            )
        else:
            self._rv_ready(rv)

    def _rv_ready(self, rv: RechargingVehicle) -> None:
        self.returning[rv.rv_id] = False
        self._on_idle()
        self.on_change()

    # ------------------------------------------------------------------
    # sortie execution
    # ------------------------------------------------------------------

    def _next_leg(self, rv: RechargingVehicle) -> None:
        if not rv.itinerary:
            rv.end_sortie()
            self._sync_rv(rv)
            self._on_idle()
            return
        node = rv.itinerary[0]
        tt = rv.travel_time_to(self.s.sensor_pos[node])
        self.s.sim.schedule_in(tt, lambda rv=rv: self._rv_arrive(rv), priority=PRIO_RV)

    def _rv_arrive(self, rv: RechargingVehicle) -> None:
        s = self.s
        self.energy.advance()
        node = rv.itinerary.pop(0)
        rv.move_to(s.sensor_pos[node])
        self._sync_rv(rv)
        self._c_legs.inc()
        if s.trace.enabled:
            s.trace.emit(s.now, EventKind.RV_ARRIVED, rv.rv_id, float(node))
        demand = float(s.bank.demands_j[node])
        charge_time = s.cfg.charge_model.charge_time_s(demand)
        s.sim.schedule_in(
            charge_time,
            lambda rv=rv, node=node: self._rv_finish_charge(rv, node),
            priority=PRIO_RV,
        )

    def _rv_finish_charge(self, rv: RechargingVehicle, node: int) -> None:
        s = self.s
        self.energy.advance()
        was_depleted = bool(s.bank.levels_j[node] <= 0.0)
        delivered = s.bank.charge_to_full([node])
        if s.trace.enabled:
            s.trace.emit(s.now, EventKind.NODE_RECHARGED, int(node), delivered)
            if was_depleted:
                s.trace.emit(s.now, EventKind.SENSOR_REVIVED, int(node))
        rv.deliver(delivered, s.cfg.charge_model.efficiency)
        self._sync_rv(rv)
        self._h_delivered.observe(delivered)
        self._rv_delivered[rv.rv_id].inc(delivered)
        self.gate.mark_recharged(node)
        # A refilled node may have been depleted: rates and coverage change.
        self.energy.recompute()
        self.on_change()
        self._next_leg(rv)

    # ------------------------------------------------------------------
    # books
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Fleet-wide cumulative statistics for the final summary."""
        return {
            "distance_m": sum(rv.stats.distance_m for rv in self.rvs),
            "moving_energy_j": sum(rv.stats.moving_energy_j for rv in self.rvs),
            "delivered_energy_j": sum(rv.stats.delivered_energy_j for rv in self.rvs),
            "sorties": sum(rv.stats.sorties for rv in self.rvs),
        }
