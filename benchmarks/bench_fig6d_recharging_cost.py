"""Fig. 6(d) — recharging cost (m/sensor) vs ERP.

The paper's metric: total RV traveling distance divided by the
time-averaged number of operational sensors.  Shape: the
Partition-Scheme is cheapest and the cost declines with ERP.
"""

import numpy as np

from repro.experiments import ERP_GRID, format_panel, panel_d

from _shared import emit, get_sweep


def bench_fig6d_recharging_cost(benchmark):
    series = benchmark.pedantic(lambda: panel_d(get_sweep()), rounds=1, iterations=1)
    emit("fig6d_recharging_cost", format_panel("d", series, ERP_GRID))
    means = {s: float(np.mean(v)) for s, v in series.items()}
    assert means["partition"] <= means["greedy"]
    for s, v in series.items():
        assert v[-1] <= v[0] * 1.05, s
