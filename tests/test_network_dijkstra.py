"""Unit tests for the from-scratch Dijkstra, cross-validated vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.network.dijkstra import shortest_paths
from repro.network.topology import Topology


class TestShortestPaths:
    def test_trivial_single_node(self):
        indptr = np.array([0, 0])
        dist, parent = shortest_paths(indptr, np.empty(0, dtype=np.intp), np.empty(0), 0)
        assert dist[0] == 0.0
        assert parent[0] == -1

    def test_chain(self):
        topo = Topology(np.column_stack([np.arange(4) * 1.0, np.zeros(4)]), comm_range=1.1)
        dist, parent = shortest_paths(topo.indptr, topo.indices, topo.weights, 0)
        assert np.allclose(dist, [0, 1, 2, 3])
        assert parent.tolist() == [-1, 0, 1, 2]

    def test_unreachable_is_inf(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0]])
        topo = Topology(pts, comm_range=1.0)
        dist, parent = shortest_paths(topo.indptr, topo.indices, topo.weights, 0)
        assert dist[1] == np.inf
        assert parent[1] == -1

    def test_source_out_of_range(self):
        indptr = np.array([0, 0])
        with pytest.raises(ValueError):
            shortest_paths(indptr, np.empty(0, dtype=np.intp), np.empty(0), 5)

    def test_negative_weight_rejected(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([1, 0], dtype=np.intp)
        weights = np.array([-1.0, -1.0])
        with pytest.raises(ValueError):
            shortest_paths(indptr, indices, weights, 0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 40, size=(60, 2))
        topo = Topology(pts, comm_range=10.0, base_station=[20.0, 20.0])
        dist, parent = shortest_paths(topo.indptr, topo.indices, topo.weights, topo.base_index)
        g = topo.to_networkx()
        nx_dist = nx.single_source_dijkstra_path_length(g, topo.base_index)
        for v in range(len(topo)):
            if v in nx_dist:
                assert dist[v] == pytest.approx(nx_dist[v])
            else:
                assert dist[v] == np.inf

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_csgraph(self, seed):
        """Second independent oracle: scipy's C implementation on the
        same CSR arrays (no graph conversion in between)."""
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as sp_dijkstra

        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 40, size=(60, 2))
        topo = Topology(pts, comm_range=10.0, base_station=[20.0, 20.0])
        dist, parent = shortest_paths(topo.indptr, topo.indices, topo.weights, topo.base_index)
        n = len(topo)
        graph = csr_matrix((topo.weights, topo.indices, topo.indptr), shape=(n, n))
        sp_dist = sp_dijkstra(graph, directed=True, indices=topo.base_index)
        assert np.allclose(dist, sp_dist, equal_nan=True)

    def test_negative_check_not_fooled_by_cache(self):
        """A fresh negative array must still raise even after valid
        arrays of the same shape were validated (identity keying)."""
        indptr = np.array([0, 1, 2])
        indices = np.array([1, 0], dtype=np.intp)
        good = np.array([1.0, 1.0])
        shortest_paths(indptr, indices, good, 0)
        shortest_paths(indptr, indices, good, 0)  # second call hits the cache
        bad = np.array([-1.0, 1.0])
        with pytest.raises(ValueError):
            shortest_paths(indptr, indices, bad, 0)

    def test_parent_pointers_consistent(self, rng):
        pts = rng.uniform(0, 30, size=(50, 2))
        topo = Topology(pts, comm_range=9.0)
        dist, parent = shortest_paths(topo.indptr, topo.indices, topo.weights, 0)
        for v in range(50):
            p = parent[v]
            if p >= 0:
                edge = np.hypot(*(topo.points[v] - topo.points[p]))
                assert dist[v] == pytest.approx(dist[p] + edge)
