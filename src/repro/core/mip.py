"""The JRSSAM optimization problem (Section IV-A) and an exact solver.

The paper formulates Joint Recharge Scheduling and Sensor Activity
Management as a mixed-integer program: maximize Eq. (2) — delivered
demand minus traveling cost — subject to tour structure (3)-(4),
monitoring constraints (5)-(6), the RV capacity (7), assignment
constraints (8)-(9), integrality (10)-(12) and Miller-Tucker-Zemlin
style subtour elimination (13)-(14).  Its infinite-capacity special
case is the Traveling Salesman Problem with Profits, so the problem is
NP-hard.

This module provides:

* :class:`RechargeInstance` — the problem data (positions, demands,
  depot/RV start, ``em``, capacity).
* :func:`verify_routes` — checks a candidate fleet solution against the
  formulation's constraints and computes its objective.  The test suite
  runs every heuristic's output through it.
* :func:`solve_exact_single_rv` — a Held-Karp dynamic program over node
  subsets that returns the *provably optimal* single-RV route for small
  instances (n <= ~15), used to measure the insertion heuristic's
  optimality gap (DESIGN.md ablation A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry.points import as_points, pairwise_distances

__all__ = [
    "ExactSolution",
    "FleetSolution",
    "RechargeInstance",
    "solve_exact_fleet",
    "solve_exact_single_rv",
    "verify_routes",
]


@dataclass(frozen=True)
class RechargeInstance:
    """Data of one recharge-scheduling instance.

    Attributes:
        positions: ``(n, 2)`` node positions (the recharge node list).
        demands: ``(n,)`` energy demands ``d_i``.
        start: RV start position (``v0`` in the closed formulation; the
            RV's current location in the heuristics' open-route mode).
        em_j_per_m: traveling energy rate, making
            ``c_ij = em * ||p_i - p_j||``.
        capacity_j: RV budget ``Cr``; ``inf`` recovers pure TSP-with-
            profits.
        closed: whether routes must return to ``start`` (the paper's
            constraint (3)); the online heuristics use open routes.
    """

    positions: np.ndarray
    demands: np.ndarray
    start: np.ndarray
    em_j_per_m: float = 5.6
    capacity_j: float = float("inf")
    closed: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "positions", as_points(self.positions))
        object.__setattr__(self, "demands", np.asarray(self.demands, dtype=np.float64))
        object.__setattr__(self, "start", np.asarray(self.start, dtype=np.float64).reshape(2))
        if self.demands.shape != (len(self.positions),):
            raise ValueError("demands must align with positions")
        if np.any(self.demands < 0):
            raise ValueError("demands must be non-negative")
        if self.em_j_per_m < 0:
            raise ValueError("em_j_per_m must be non-negative")
        if self.capacity_j <= 0:
            raise ValueError("capacity_j must be positive")

    @property
    def n(self) -> int:
        return len(self.positions)

    def route_length(self, order: Sequence[int]) -> float:
        """Meters traveled serving ``order`` from ``start`` (+ return if
        the instance is closed)."""
        order = list(order)
        if not order:
            return 0.0
        pts = np.vstack([self.start, self.positions[order]])
        if self.closed:
            pts = np.vstack([pts, self.start])
        seg = np.diff(pts, axis=0)
        return float(np.hypot(seg[:, 0], seg[:, 1]).sum())

    def route_cost(self, order: Sequence[int]) -> float:
        """Traveling energy of a route."""
        return self.em_j_per_m * self.route_length(order)

    def route_profit(self, order: Sequence[int]) -> float:
        """Eq. (2) contribution of one route."""
        order = list(order)
        return float(self.demands[order].sum()) - self.route_cost(order)

    def route_feasible(self, order: Sequence[int]) -> bool:
        """Constraint (7): demand plus traveling energy within ``Cr``."""
        order = list(order)
        used = float(self.demands[order].sum()) + self.route_cost(order)
        return used <= self.capacity_j + 1e-9


@dataclass(frozen=True)
class ExactSolution:
    """Optimal single-RV route for a :class:`RechargeInstance`.

    Attributes:
        order: node visit order (possibly empty — serving nothing is
            feasible and optimal when every profit is negative).
        profit: the optimal Eq. (2) value.
        explored_subsets: size of the DP state space, for reporting.
    """

    order: Tuple[int, ...]
    profit: float
    explored_subsets: int


def solve_exact_single_rv(
    instance: RechargeInstance,
    allow_skip: bool = True,
) -> ExactSolution:
    """Provably optimal single-RV route by Held-Karp subset DP.

    For every subset ``S`` of nodes the DP computes the minimum-length
    path from the start visiting all of ``S`` (ending anywhere); since
    both the objective and the capacity constraint improve with shorter
    routes, the min-length order is optimal for its subset, and the
    best feasible subset wins.  Complexity ``O(2^n n^2)`` — fine for the
    n <= 15 instances the validation benchmarks use.

    Args:
        instance: the problem data.
        allow_skip: when False, the route must serve *all* nodes
            (classical TSP path mode, used to cross-check the DP against
            brute-force permutations in tests).
    """
    n = instance.n
    if n == 0:
        return ExactSolution((), 0.0, 0)
    if n > 20:
        raise ValueError(f"exact solver limited to 20 nodes, got {n}")
    pos = instance.positions
    dem = instance.demands
    em = instance.em_j_per_m
    d_start = np.hypot(pos[:, 0] - instance.start[0], pos[:, 1] - instance.start[1])
    dmat = pairwise_distances(pos)
    size = 1 << n
    INF = np.inf
    # dp[mask][last]: min path length from start visiting mask, ending at last.
    dp = np.full((size, n), INF, dtype=np.float64)
    parent = np.full((size, n), -1, dtype=np.int64)
    for j in range(n):
        dp[1 << j][j] = d_start[j]
    for mask in range(1, size):
        row = dp[mask]
        for last in range(n):
            cur = row[last]
            if not np.isfinite(cur):
                continue
            rest = (~mask) & (size - 1)
            nxt = rest
            while nxt:
                j = (nxt & -nxt).bit_length() - 1
                nmask = mask | (1 << j)
                cand = cur + dmat[last, j]
                if cand < dp[nmask][j]:
                    dp[nmask][j] = cand
                    parent[nmask][j] = last
                nxt &= nxt - 1

    best_profit = 0.0 if allow_skip else -np.inf
    best_mask, best_last = 0, -1
    subset_demand = np.zeros(size, dtype=np.float64)
    for mask in range(1, size):
        j = (mask & -mask).bit_length() - 1
        subset_demand[mask] = subset_demand[mask & (mask - 1)] + dem[j]
    masks = range(1, size) if allow_skip else [size - 1]
    for mask in masks:
        finite = np.isfinite(dp[mask])
        if not np.any(finite):
            continue
        lengths = dp[mask]
        if instance.closed:
            lengths = lengths + d_start  # return leg to the start/depot
        total_d = subset_demand[mask]
        feas = total_d + em * lengths <= instance.capacity_j + 1e-9
        cand = np.where(finite & feas, total_d - em * lengths, -np.inf)
        j = int(np.argmax(cand))
        if cand[j] > best_profit:
            best_profit = float(cand[j])
            best_mask, best_last = mask, j

    if best_last < 0:
        return ExactSolution((), float(best_profit) if np.isfinite(best_profit) else 0.0, size)
    order: List[int] = []
    mask, last = best_mask, best_last
    while last >= 0:
        order.append(last)
        prev = int(parent[mask][last])
        mask &= ~(1 << last)
        last = prev
    order.reverse()
    return ExactSolution(tuple(order), best_profit, size)


def _single_rv_tables(instance: RechargeInstance):
    """Held-Karp tables shared by the single-RV and fleet solvers.

    Returns ``(dp, parent, profit_exact)`` where ``profit_exact[mask]``
    is the optimal profit of serving *exactly* the nodes in ``mask``
    with one RV (``-inf`` when infeasible), and ``dp/parent`` recover
    the corresponding min-length order.
    """
    n = instance.n
    pos = instance.positions
    dem = instance.demands
    em = instance.em_j_per_m
    d_start = np.hypot(pos[:, 0] - instance.start[0], pos[:, 1] - instance.start[1])
    dmat = pairwise_distances(pos)
    size = 1 << n
    dp = np.full((size, n), np.inf, dtype=np.float64)
    parent = np.full((size, n), -1, dtype=np.int64)
    for j in range(n):
        dp[1 << j][j] = d_start[j]
    for mask in range(1, size):
        row = dp[mask]
        for last in range(n):
            cur = row[last]
            if not np.isfinite(cur):
                continue
            rest = (~mask) & (size - 1)
            nxt = rest
            while nxt:
                j = (nxt & -nxt).bit_length() - 1
                nmask = mask | (1 << j)
                cand = cur + dmat[last, j]
                if cand < dp[nmask][j]:
                    dp[nmask][j] = cand
                    parent[nmask][j] = last
                nxt &= nxt - 1
    subset_demand = np.zeros(size, dtype=np.float64)
    for mask in range(1, size):
        j = (mask & -mask).bit_length() - 1
        subset_demand[mask] = subset_demand[mask & (mask - 1)] + dem[j]
    lengths = dp.copy()
    if instance.closed:
        lengths = lengths + d_start[None, :]
    # min over the `last` axis; rows with no finite entry stay +inf.
    best_len = lengths.min(axis=1)
    profit_exact = np.full(size, -np.inf, dtype=np.float64)
    profit_exact[0] = 0.0
    feasible = subset_demand + em * best_len <= instance.capacity_j + 1e-9
    valid = np.isfinite(best_len) & feasible
    valid[0] = False
    profit_exact[valid] = subset_demand[valid] - em * best_len[valid]
    return dp, parent, profit_exact


def _recover_order(instance: RechargeInstance, dp, parent, mask: int) -> Tuple[int, ...]:
    """Min-length visiting order of the exact subset ``mask``."""
    if mask == 0:
        return ()
    lengths = dp[mask].copy()
    if instance.closed:
        pos = instance.positions
        d_start = np.hypot(pos[:, 0] - instance.start[0], pos[:, 1] - instance.start[1])
        lengths = lengths + d_start
    last = int(np.argmin(lengths))
    order: List[int] = []
    m = mask
    while last >= 0:
        order.append(last)
        prev = int(parent[m][last])
        m &= ~(1 << last)
        last = prev
    order.reverse()
    return tuple(order)


@dataclass(frozen=True)
class FleetSolution:
    """Optimal multi-RV solution for small instances.

    Attributes:
        routes: one visiting order per RV (possibly empty tuples).
        profit: the optimal total Eq. (2) value.
    """

    routes: Tuple[Tuple[int, ...], ...]
    profit: float


def solve_exact_fleet(instance: RechargeInstance, n_rvs: int) -> FleetSolution:
    """Provably optimal fleet schedule by subset-partition DP.

    All RVs start at ``instance.start`` (the paper's base station, per
    constraint (3)) and share the per-sortie capacity.  The DP layers
    one RV at a time over the 3^n submask lattice:
    ``h_k[mask] = max over s subset of mask: h_{k-1}[mask - s] + p*(s)``
    with ``p*`` the exact single-RV profit.  Practical to n ~= 12.

    Args:
        instance: the problem data.
        n_rvs: fleet size ``m >= 1``.
    """
    if n_rvs < 1:
        raise ValueError("n_rvs must be >= 1")
    n = instance.n
    if n == 0:
        return FleetSolution(tuple(() for _ in range(n_rvs)), 0.0)
    if n > 14:
        raise ValueError(f"exact fleet solver limited to 14 nodes, got {n}")
    dp, parent, profit_exact = _single_rv_tables(instance)
    size = 1 << n

    # h[k][mask]: best profit serving a subset of `mask` with k RVs.
    h_prev = np.maximum(profit_exact, 0.0)  # one RV may serve nothing
    # Make h_prev monotone over submasks: SOS max.
    for bit in range(n):
        step = 1 << bit
        for mask in range(size):
            if mask & step:
                if h_prev[mask ^ step] > h_prev[mask]:
                    h_prev[mask] = h_prev[mask ^ step]
    choice: List[np.ndarray] = []  # choice[k][mask] = submask served by RV k
    h_layers = [h_prev]
    for _ in range(1, n_rvs):
        h_new = h_prev.copy()
        pick = np.zeros(size, dtype=np.int64)
        for mask in range(size):
            sub = mask
            best = h_new[mask]
            best_sub = 0
            while sub:
                if profit_exact[sub] > 0:
                    cand = profit_exact[sub] + h_prev[mask ^ sub]
                    if cand > best:
                        best = cand
                        best_sub = sub
                sub = (sub - 1) & mask
            h_new[mask] = best
            pick[mask] = best_sub
        choice.append(pick)
        h_layers.append(h_new)
        h_prev = h_new

    # Recover: walk layers from the last RV back to the first.
    full = size - 1
    routes_rev: List[Tuple[int, ...]] = []
    mask = full
    for k in range(n_rvs - 1, 0, -1):
        sub = int(choice[k - 1][mask])
        routes_rev.append(_recover_order(instance, dp, parent, sub))
        mask ^= sub
    # First RV: best single subset of the remaining mask.
    best_sub, best_profit = 0, 0.0
    sub = mask
    while sub:
        if profit_exact[sub] > best_profit:
            best_profit = profit_exact[sub]
            best_sub = sub
        sub = (sub - 1) & mask
    routes_rev.append(_recover_order(instance, dp, parent, best_sub))
    routes = tuple(reversed(routes_rev))
    return FleetSolution(routes, float(h_layers[-1][full]))


def verify_routes(
    instance: RechargeInstance,
    routes: Sequence[Sequence[int]],
) -> float:
    """Check a fleet solution against the MIP constraints; return Eq. (2).

    Enforced:

    * each node served by at most one RV — constraint (8);
    * every route is a simple path (no vertex repeats) — constraints
      (4), (13), (14): a simple path admits a valid MTZ labeling;
    * every route within capacity — constraint (7).

    The tour-structure constraint (3) (start/end at the base) holds by
    construction when ``instance.closed`` is set, because costs then
    include the return leg.  Constraint (9) (every RV serves at least
    one node) is treated as vacuous for empty routes — an online
    scheduler legitimately idles an RV.

    Raises:
        ValueError: when a constraint is violated.
    """
    seen: set = set()
    total = 0.0
    for r_idx, order in enumerate(routes):
        order = list(order)
        if len(set(order)) != len(order):
            raise ValueError(f"route {r_idx} visits a node twice: {order}")
        for node in order:
            if not 0 <= node < instance.n:
                raise ValueError(f"route {r_idx} references unknown node {node}")
            if node in seen:
                raise ValueError(f"node {node} served by more than one RV")
            seen.add(node)
        if not instance.route_feasible(order):
            raise ValueError(f"route {r_idx} violates the RV capacity (7)")
        total += instance.route_profit(order)
    return total
