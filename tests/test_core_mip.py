"""Unit tests for the MIP formulation and the exact Held-Karp solver."""

import itertools

import numpy as np
import pytest

from repro.core.insertion import build_insertion_sequence
from repro.core.mip import RechargeInstance, solve_exact_single_rv, verify_routes
from repro.core.requests import RechargeRequest, aggregate_by_cluster


def make_instance(rng, n=6, em=1.0, capacity=float("inf"), closed=False, demand_scale=30.0):
    return RechargeInstance(
        positions=rng.uniform(0, 50, size=(n, 2)),
        demands=rng.uniform(0.5, 1.0, size=n) * demand_scale,
        start=np.array([25.0, 25.0]),
        em_j_per_m=em,
        capacity_j=capacity,
        closed=closed,
    )


class TestRechargeInstance:
    def test_route_length_open_vs_closed(self):
        inst = RechargeInstance(
            positions=np.array([[10.0, 0.0]]),
            demands=np.array([5.0]),
            start=np.array([0.0, 0.0]),
            closed=False,
        )
        assert inst.route_length([0]) == pytest.approx(10.0)
        closed = RechargeInstance(
            positions=inst.positions, demands=inst.demands, start=inst.start, closed=True
        )
        assert closed.route_length([0]) == pytest.approx(20.0)

    def test_route_profit(self):
        inst = RechargeInstance(
            positions=np.array([[10.0, 0.0]]),
            demands=np.array([25.0]),
            start=np.array([0.0, 0.0]),
            em_j_per_m=2.0,
        )
        assert inst.route_profit([0]) == pytest.approx(5.0)

    def test_feasibility(self):
        inst = RechargeInstance(
            positions=np.array([[10.0, 0.0]]),
            demands=np.array([25.0]),
            start=np.array([0.0, 0.0]),
            em_j_per_m=1.0,
            capacity_j=30.0,
        )
        assert not inst.route_feasible([0])  # 25 + 10 > 30
        assert inst.route_feasible([])

    def test_validation(self):
        with pytest.raises(ValueError):
            RechargeInstance(np.zeros((2, 2)), np.array([1.0]), np.zeros(2))
        with pytest.raises(ValueError):
            RechargeInstance(np.zeros((1, 2)), np.array([-1.0]), np.zeros(2))


class TestExactSolver:
    def test_empty_instance(self):
        inst = RechargeInstance(np.empty((0, 2)), np.array([]), np.zeros(2))
        sol = solve_exact_single_rv(inst)
        assert sol.order == ()
        assert sol.profit == 0.0

    def test_skips_unprofitable(self):
        inst = RechargeInstance(
            positions=np.array([[100.0, 0.0]]),
            demands=np.array([1.0]),
            start=np.array([0.0, 0.0]),
            em_j_per_m=5.6,
        )
        sol = solve_exact_single_rv(inst)
        assert sol.order == ()

    def test_matches_bruteforce(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            inst = make_instance(rng, n=6, capacity=120.0)
            sol = solve_exact_single_rv(inst)
            # Brute force over all subsets and permutations.
            best = 0.0
            for k in range(1, 7):
                for subset in itertools.combinations(range(6), k):
                    for perm in itertools.permutations(subset):
                        if inst.route_feasible(perm):
                            best = max(best, inst.route_profit(perm))
            assert sol.profit == pytest.approx(best)

    def test_closed_matches_bruteforce(self):
        rng = np.random.default_rng(11)
        inst = make_instance(rng, n=5, closed=True, demand_scale=60.0)
        sol = solve_exact_single_rv(inst)
        best = 0.0
        for k in range(1, 6):
            for subset in itertools.combinations(range(5), k):
                for perm in itertools.permutations(subset):
                    best = max(best, inst.route_profit(perm))
        assert sol.profit == pytest.approx(best)

    def test_all_nodes_mode(self):
        rng = np.random.default_rng(2)
        inst = make_instance(rng, n=5, demand_scale=0.0)
        sol = solve_exact_single_rv(inst, allow_skip=False)
        assert sorted(sol.order) == [0, 1, 2, 3, 4]
        # With zero demands this is the min-length open TSP path.
        best = min(
            inst.route_length(perm) for perm in itertools.permutations(range(5))
        )
        assert -sol.profit / inst.em_j_per_m == pytest.approx(best)

    def test_capacity_infeasible_all(self):
        inst = RechargeInstance(
            positions=np.array([[1.0, 0.0]]),
            demands=np.array([100.0]),
            start=np.array([0.0, 0.0]),
            capacity_j=10.0,
        )
        sol = solve_exact_single_rv(inst)
        assert sol.order == ()

    def test_too_large_rejected(self):
        inst = RechargeInstance(np.zeros((21, 2)), np.zeros(21), np.zeros(2))
        with pytest.raises(ValueError):
            solve_exact_single_rv(inst)

    def test_insertion_heuristic_never_beats_exact(self):
        """Sanity: the heuristic's profit is bounded by the optimum."""
        for seed in range(8):
            rng = np.random.default_rng(seed)
            inst = make_instance(rng, n=7, demand_scale=50.0)
            reqs = [
                RechargeRequest(i, inst.positions[i], float(inst.demands[i]))
                for i in range(inst.n)
            ]
            stops = aggregate_by_cluster(reqs)
            order = build_insertion_sequence(stops, inst.start, 1e9, inst.em_j_per_m)
            heuristic = inst.route_profit(order) if order else 0.0
            exact = solve_exact_single_rv(inst).profit
            assert heuristic <= exact + 1e-9


class TestVerifyRoutes:
    def test_accepts_disjoint_simple_routes(self, rng):
        inst = make_instance(rng, n=6)
        total = verify_routes(inst, [[0, 1], [2, 3], []])
        assert total == pytest.approx(
            inst.route_profit([0, 1]) + inst.route_profit([2, 3])
        )

    def test_rejects_shared_node(self, rng):
        inst = make_instance(rng, n=4)
        with pytest.raises(ValueError, match="more than one RV"):
            verify_routes(inst, [[0, 1], [1, 2]])

    def test_rejects_revisit(self, rng):
        inst = make_instance(rng, n=4)
        with pytest.raises(ValueError, match="twice"):
            verify_routes(inst, [[0, 0]])

    def test_rejects_unknown_node(self, rng):
        inst = make_instance(rng, n=3)
        with pytest.raises(ValueError, match="unknown"):
            verify_routes(inst, [[5]])

    def test_rejects_capacity_violation(self, rng):
        inst = make_instance(rng, n=4, capacity=1.0)
        with pytest.raises(ValueError, match="capacity"):
            verify_routes(inst, [[0]])
