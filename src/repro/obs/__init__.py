"""repro.obs — the observability layer.

Instrumented runs answer *why* a result looks the way it does: named
counters, gauges, histograms and wall-clock phase timers
(:mod:`repro.obs.instruments`) are recorded by the simulation
components, hierarchical spans (:mod:`repro.obs.spans`) replay the run
tick by tick, runtime invariant monitors (:mod:`repro.obs.monitors`)
trip on conservation/threshold/capacity violations, and everything is
exported through pluggable, registry-named formats
(:mod:`repro.obs.exporters`: ``jsonl``, ``prometheus``, ``csv``,
``spans``, ``sqlite``) and archived with a provenance
:class:`RunManifest` (:mod:`repro.obs.manifest`).  ``repro report DIR``
renders an archived directory back into tables and a span tree
(:mod:`repro.obs.report`); ``repro drift A B`` diffs two archives
(:mod:`repro.obs.drift`).  A :class:`BlackBoxRecorder`
(:mod:`repro.obs.blackbox`) keeps a bounded ring of per-tick state
digests plus periodic checkpoints and flushes a self-contained
postmortem bundle on failure; ``repro postmortem`` renders it and
``repro replay`` re-executes it deterministically.

The package deliberately never imports :mod:`repro.sim` — the
simulation state holds ``instruments``/``spans``/``monitors``
references, so the dependency points one way.  The run-level glue
lives in :func:`repro.sim.runner.run_with_telemetry`.

Quickstart::

    from repro import SimulationConfig
    from repro.sim.runner import run_with_telemetry

    summary, manifest = run_with_telemetry(
        SimulationConfig.small(), "telemetry_out"
    )
    # telemetry_out/ now holds manifest.json, events.jsonl,
    # metrics.jsonl, metrics.prom, series.csv, instruments.csv,
    # spans.jsonl
"""

from .blackbox import (
    NULL_BLACKBOX,
    BlackBoxRecorder,
    NullBlackBox,
    PostmortemBundle,
    blackbox_enabled,
    digest_rng,
    digest_state,
    format_postmortem,
    load_bundle,
)
from .drift import diff_metrics, format_drift, load_metrics
from .exporters import (
    DEFAULT_EXPORTERS,
    CsvExporter,
    JsonlExporter,
    PrometheusExporter,
    SpansExporter,
    SqliteExporter,
    TelemetryBundle,
    prometheus_lines,
)
from .instruments import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_INSTRUMENTS,
    Counter,
    Gauge,
    Histogram,
    Instruments,
    NullInstruments,
    PhaseTimer,
)
from .manifest import RunManifest, config_digest, git_revision
from .monitors import (
    NULL_MONITORS,
    InvariantViolation,
    MonitorSet,
    NullMonitors,
)
from .report import format_report, load_report
from .schema import POOL_STATS, SERVICE_DESCRIBE_KEYS, STORE_STATS, StatField, StatsSchema
from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    load_spans,
    render_span_tree,
    spans_to_jsonl_lines,
)

# The live telemetry plane (repro.obs.live) is exported lazily: the
# module drags in http.server, which nothing on the null path needs —
# `from repro.obs import MetricsBus` works, but a plain
# `import repro.obs` stays exactly as light as before.
_LIVE_EXPORTS = {
    "MetricsBus",
    "LiveServer",
    "SloRule",
    "SloEvaluator",
    "parse_slo_rules",
    "live_port_from_env",
    "live_interval_from_env",
}


def __getattr__(name: str):
    if name in _LIVE_EXPORTS:
        from . import live

        return getattr(live, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BlackBoxRecorder",
    "Counter",
    "CsvExporter",
    "DEFAULT_EXPORTERS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Instruments",
    "InvariantViolation",
    "JsonlExporter",
    "LiveServer",
    "MetricsBus",
    "MonitorSet",
    "NULL_BLACKBOX",
    "NULL_INSTRUMENTS",
    "NULL_MONITORS",
    "NULL_TRACER",
    "NullBlackBox",
    "NullInstruments",
    "NullMonitors",
    "NullTracer",
    "PhaseTimer",
    "POOL_STATS",
    "PostmortemBundle",
    "PrometheusExporter",
    "RunManifest",
    "SERVICE_DESCRIBE_KEYS",
    "STORE_STATS",
    "SloEvaluator",
    "SloRule",
    "Span",
    "SpanTracer",
    "SpansExporter",
    "SqliteExporter",
    "StatField",
    "StatsSchema",
    "TelemetryBundle",
    "blackbox_enabled",
    "config_digest",
    "diff_metrics",
    "digest_rng",
    "digest_state",
    "format_drift",
    "format_postmortem",
    "format_report",
    "git_revision",
    "live_interval_from_env",
    "live_port_from_env",
    "load_bundle",
    "load_metrics",
    "load_report",
    "load_spans",
    "parse_slo_rules",
    "prometheus_lines",
    "render_span_tree",
    "spans_to_jsonl_lines",
]
