"""Tests for the command-line interface and serialization."""

import json
import logging

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.sim.config import SimulationConfig
from repro.sim.serialization import config_from_dict, config_to_dict


class TestSerialization:
    def test_roundtrip_default(self):
        cfg = SimulationConfig.small(scheduler="partition", erp=0.7, seed=3)
        rebuilt = config_from_dict(config_to_dict(cfg))
        assert rebuilt == cfg

    def test_roundtrip_experiment(self):
        cfg = SimulationConfig.experiment(erp=0.4)
        rebuilt = config_from_dict(config_to_dict(cfg))
        assert rebuilt == cfg

    def test_json_compatible(self):
        cfg = SimulationConfig.paper()
        payload = json.dumps(config_to_dict(cfg))
        assert config_from_dict(json.loads(payload)) == cfg

    def test_partial_dict_uses_defaults(self):
        cfg = config_from_dict({"n_sensors": 10, "scheduler": "greedy"})
        assert cfg.n_sensors == 10
        assert cfg.scheduler == "greedy"
        assert cfg.n_targets == 15  # default


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--preset", "small", "--scheduler", "greedy", "--erp", "0.5", "--days", "2"]
        )
        assert args.preset == "small"
        assert args.erp == 0.5

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "LOUD", "run"])


class TestCommands:
    def test_run_json(self, capsys):
        rc = main(["run", "--preset", "small", "--days", "0.2", "--json", "--seed", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["sim_time_s"] == pytest.approx(0.2 * 86400)
        assert payload["config"]["scheduler"]

    def test_run_table(self, capsys):
        rc = main(["run", "--preset", "small", "--days", "0.2", "--scheduler", "greedy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traveling_energy_j" in out
        assert "greedy" in out

    def test_run_with_config_file(self, tmp_path, capsys):
        cfg = SimulationConfig.small(sim_time_s=0.2 * 86400, seed=5)
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config_to_dict(cfg)))
        rc = main(["run", "--config", str(path)])
        assert rc == 0

    def test_estimate(self, capsys):
        rc = main(["estimate", "--preset", "experiment"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster size" in out
        assert "fleet lower bound" in out

    def test_map_ascii(self, capsys):
        rc = main(["map", "--preset", "small", "--at-hours", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "B" in out and "+" in out

    def test_map_svg(self, tmp_path, capsys):
        target = tmp_path / "field.svg"
        rc = main(["map", "--preset", "small", "--at-hours", "1", "--svg", str(target)])
        assert rc == 0
        assert target.read_text().startswith("<svg")

    def test_figure_unknown_id(self, capsys):
        rc = main(["figure", "9z"])
        assert rc == 2

    def test_log_level_configures_logging(self, capsys):
        root = logging.getLogger()
        before_level, before_handlers = root.level, list(root.handlers)
        try:
            rc = main(["--log-level", "DEBUG", "estimate", "--preset", "small"])
            assert rc == 0
            assert root.level == logging.DEBUG
        finally:
            root.level = before_level
            for h in list(root.handlers):
                if h not in before_handlers:
                    root.removeHandler(h)


class TestTelemetryCommands:
    def test_run_telemetry_and_report(self, tmp_path, capsys):
        out = tmp_path / "tele"
        rc = main(["run", "--preset", "small", "--days", "0.2", "--seed", "1",
                   "--telemetry", str(out)])
        assert rc == 0
        assert "telemetry written to" in capsys.readouterr().out
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["seed"] == 1
        for line in (out / "events.jsonl").read_text().splitlines():
            assert json.loads(line)["type"] in ("event", "sample")

        rc = main(["report", str(out)])
        assert rc == 0
        report = capsys.readouterr().out
        assert "Telemetry report" in report
        assert "Phase timings" in report

    def test_run_telemetry_exporter_subset(self, tmp_path, capsys):
        out = tmp_path / "tele"
        rc = main(["run", "--preset", "small", "--days", "0.2", "--json",
                   "--telemetry", str(out), "--exporters", "prometheus"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry_dir"] == str(out)
        assert (out / "metrics.prom").is_file()
        assert not (out / "events.jsonl").exists()

    def test_report_missing_dir_is_error(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nothing")])
        assert rc == 2
        assert "manifest" in capsys.readouterr().err

    def test_run_profile_prints_hotspots(self, capsys):
        rc = main(["run", "--preset", "small", "--days", "0.1", "--seed", "2",
                   "--profile", "--profile-top", "5"])
        assert rc == 0
        assert "cProfile" in capsys.readouterr().out
