"""Energy accounting: analytic battery advance and rate bookkeeping.

The :class:`EnergyAccounting` component owns the piecewise-constant
power model of the whole sensor network:

* :meth:`recompute` refreshes the per-sensor draw vector (idle +
  active sensing + ETX-weighted relay load + optional leakage) from the
  current activation and routing state;
* :meth:`advance` drains every battery analytically for the elapsed
  interval and reports depletions (trace events + a death callback for
  the ERC policy);
* :meth:`apply_handoffs` charges rotation notification packets;
* :meth:`breakdown` exposes the cumulative per-category Joules.

Between events nothing integrates numerically — the engine only fires
bookkeeping ticks, so a 120-day horizon costs a few hundred events.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Optional

import numpy as np

from ..trace import EventKind
from .state import SimulationState

__all__ = ["EnergyAccounting"]

logger = logging.getLogger(__name__)


class EnergyAccounting:
    """Vectorized battery advance + draw-rate recomputation.

    Args:
        state: the shared simulation state.
        on_deaths: optional callback invoked with the number of sensors
            that depleted during an :meth:`advance` (the request gate
            forwards it to adaptive ERC policies).
    """

    def __init__(
        self,
        state: SimulationState,
        on_deaths: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.s = state
        self.on_deaths = on_deaths
        self._per_packet_relay_j = state.power.relay_power_w(1.0)
        self._notification_j = state.power.notification_energy_j()
        self._last_t = 0.0
        self.rates = np.zeros(state.cfg.n_sensors, dtype=np.float64)
        self.active = np.zeros(state.cfg.n_sensors, dtype=bool)
        self._category_watts: Dict[str, float] = {}
        self.breakdown_j: Dict[str, float] = {
            "idle": 0.0,
            "sensing": 0.0,
            "relay": 0.0,
            "leakage": 0.0,
            "notifications": 0.0,
        }
        obs = state.instruments
        self._t_recompute = obs.timer("energy.recompute")
        self._t_advance = obs.timer("energy.advance")
        self._c_depletions = obs.counter("energy.depletions")
        self.recompute()

    # ------------------------------------------------------------------

    def recompute(self) -> None:
        """Refresh the per-sensor power-draw vector (Watts).

        Also keeps the per-category totals (idle / sensing / relay /
        leakage, in Watts) used by :meth:`breakdown`.
        """
        with self._t_recompute:
            self._recompute()

    def _recompute(self) -> None:
        s = self.s
        power = s.power
        alive = s.bank.alive_mask()
        active = s.activator.active_mask(alive)
        n = s.cfg.n_sensors
        rates = np.zeros(n, dtype=np.float64)
        rates[alive] = power.idle_power_w
        rates[active] += power.active_sensing_power_w
        # Relay load: push each active origin's packet rate down the
        # routing tree (farthest vertex first), skipping dead relays'
        # consumption (they can't forward).
        through = np.zeros(n + 1, dtype=np.float64)
        connected = np.isfinite(s.routing.dist[:n])
        origins = active & connected
        through[:n][origins] = power.packet_rate_hz
        parent = s.routing.parent
        base = s.routing.base
        for v in s.traffic_order:
            if v == base or through[v] == 0.0:
                continue
            p = parent[v]
            if p >= 0:
                through[p] += through[v]
        relay = through[:n] - np.where(origins, power.packet_rate_hz, 0.0)
        relay_w = np.where(alive, relay * self._per_packet_relay_j * s.uplink_etx, 0.0)
        rates += relay_w
        leak_total = 0.0
        if s.cfg.self_discharge_fraction_per_day > 0:
            # Charge-proportional leakage, frozen at the current level
            # until the next rate recomputation (piecewise-linear
            # approximation of the exponential decay).
            leak_per_s = s.cfg.self_discharge_fraction_per_day / 86400.0
            leak_w = np.where(alive, s.bank.levels_j * leak_per_s, 0.0)
            rates += leak_w
            leak_total = float(leak_w.sum())
        rates[~alive] = 0.0
        self.rates = rates
        self.active = active
        self._category_watts = {
            "idle": float(np.count_nonzero(alive)) * power.idle_power_w,
            "sensing": float(np.count_nonzero(active)) * power.active_sensing_power_w,
            "relay": float(relay_w.sum()),
            "leakage": leak_total,
        }

    def advance(self) -> None:
        """Drain batteries for the elapsed interval; handle depletions."""
        s = self.s
        dt = s.now - self._last_t
        if dt > 0:
            with self._t_advance:
                self._advance(dt)

    def _advance(self, dt: float) -> None:
        s = self.s
        was_alive = s.bank.alive_mask()
        s.bank.drain_rates(self.rates, dt)
        for cat, watts in self._category_watts.items():
            self.breakdown_j[cat] += watts * dt
        self._last_t = s.now
        died = was_alive & ~s.bank.alive_mask()
        if np.any(died):
            n_died = int(np.count_nonzero(died))
            logger.debug("t=%.0fs: %d sensor(s) depleted", s.now, n_died)
            self._c_depletions.inc(n_died)
            if s.trace.enabled:
                for v in np.flatnonzero(died):
                    s.trace.emit(s.now, EventKind.SENSOR_DEPLETED, int(v))
            if self.on_deaths is not None:
                self.on_deaths(n_died)
            # Depleted sensors stop sensing and relaying.
            self.recompute()

    def apply_handoffs(self, handoffs: np.ndarray) -> None:
        """Charge rotation notifications: TX to the retiring sensor,
        RX to its successor."""
        if not len(handoffs):
            return
        s = self.s
        rx_j = s.power.radio.rx_energy_j(s.power.payload_bytes)
        s.bank.drain_energy(handoffs[:, 0], self._notification_j)
        s.bank.drain_energy(handoffs[:, 1], rx_j)
        self.breakdown_j["notifications"] += len(handoffs) * (
            self._notification_j + rx_j
        )

    def breakdown(self) -> Dict[str, float]:
        """Cumulative network consumption by category (Joules)."""
        return dict(self.breakdown_j)
