"""Unit-disk communication topology.

Sensors share a communication range ``dc`` (Table II: 12 m); two nodes
are linked iff they are within ``dc`` of each other.  The base station
participates in the graph as one extra vertex (the paper's ``v0``) so
multi-hop routes terminate there.

The adjacency is stored in CSR form (``indptr``/``indices``/``weights``)
— compact, cache-friendly, and exactly what the from-scratch Dijkstra
in :mod:`repro.network.dijkstra` consumes.  A :mod:`networkx` view is
available for interoperability and for cross-validating the routing
code in the test suite.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..geometry.points import as_points, pairs_within

__all__ = ["Topology"]


class Topology:
    """Immutable unit-disk graph over sensor positions plus a base station.

    Args:
        positions: ``(n, 2)`` sensor coordinates.
        comm_range: communication radius ``dc`` in meters.
        base_station: optional ``(2,)`` coordinate appended as the last
            vertex (index ``n``); links to every sensor within
            ``comm_range`` of it.
    """

    def __init__(
        self,
        positions: np.ndarray,
        comm_range: float,
        base_station: Optional[np.ndarray] = None,
    ) -> None:
        positions = as_points(positions)
        if comm_range <= 0:
            raise ValueError("comm_range must be positive")
        self.comm_range = float(comm_range)
        self.n_sensors = len(positions)
        if base_station is not None:
            base = np.asarray(base_station, dtype=np.float64).reshape(1, 2)
            self.points = np.vstack([positions, base])
            self.base_index: Optional[int] = self.n_sensors
        else:
            self.points = positions
            self.base_index = None
        self._build_csr()

    def _build_csr(self) -> None:
        n = len(self.points)
        pairs = pairs_within(self.points, self.comm_range)
        if len(pairs) == 0:
            self.indptr = np.zeros(n + 1, dtype=np.intp)
            self.indices = np.empty(0, dtype=np.intp)
            self.weights = np.empty(0, dtype=np.float64)
            self.n_edges = 0
            return
        # Symmetrize: every undirected pair becomes two directed arcs.
        src = np.concatenate([pairs[:, 0], pairs[:, 1]])
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
        d = self.points[src] - self.points[dst]
        w = np.hypot(d[:, 0], d[:, 1])
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        self.indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(self.indptr, src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.indices = dst
        self.weights = w
        self.n_edges = len(pairs)

    def __len__(self) -> int:
        return len(self.points)

    def neighbors(self, node: int) -> np.ndarray:
        """Indices adjacent to ``node``."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Edge lengths aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def is_connected_to_base(self) -> np.ndarray:
        """Boolean mask over sensors: can reach the base station.

        Computed with a BFS from the base vertex; requires the topology
        to have been built with a base station.
        """
        if self.base_index is None:
            raise ValueError("topology was built without a base station")
        seen = np.zeros(len(self.points), dtype=bool)
        stack = [self.base_index]
        seen[self.base_index] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return seen[: self.n_sensors]

    def to_networkx(self) -> nx.Graph:
        """A :class:`networkx.Graph` view with ``weight`` edge attributes."""
        g = nx.Graph()
        g.add_nodes_from(range(len(self.points)))
        for u in range(len(self.points)):
            nbrs = self.neighbors(u)
            ws = self.neighbor_weights(u)
            for v, w in zip(nbrs, ws):
                if u < v:
                    g.add_edge(int(u), int(v), weight=float(w))
        return g
