"""``repro top``: a live terminal dashboard over the ``/statusz`` feed.

Polls a ``repro serve --live-port`` endpoint and renders per-worker
utilization, throughput counters, latency histogram summaries and the
in-flight job's progress — the operator's ``top`` for a sweep fleet.
Uses :mod:`curses` when a real terminal is attached; ``--plain`` (or a
dumb/absent terminal, or a finite ``--frames`` run in CI) prints each
frame to stdout instead, so the command renders anywhere without
hanging.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

__all__ = ["fetch_status", "format_frame", "run_top"]


def fetch_status(url: str, timeout_s: float = 2.0) -> Dict[str, Any]:
    """One ``/statusz`` poll, parsed (raises URLError on a dead plane)."""
    with urllib.request.urlopen(f"{url}/statusz", timeout=timeout_s) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _fmt_rate(value: float) -> str:
    return f"{value:,.0f}" if value >= 10 else f"{value:.2f}"


def _fmt_hist(name: str, row: Dict[str, Any]) -> str:
    count = row.get("count", 0)
    mean = row.get("mean", row.get("mean_s", 0.0))
    mx = row.get("max", row.get("max_s", 0.0))
    return f"  {name:<28} n={count:<8} mean={mean * 1000:9.2f}ms max={mx * 1000:9.2f}ms"


def format_frame(status: Dict[str, Any], width: int = 100) -> List[str]:
    """Render one ``/statusz`` payload as display lines.

    Pure function of the payload (plus the clock for the header), so
    the plain and curses paths — and the tests — share one renderer.
    """
    lines: List[str] = []
    service = status.get("service", {})
    health = status.get("health", {})
    state = health.get("status", "?")
    lines.append(
        f"repro top — {time.strftime('%H:%M:%S')}  "
        f"status={state}  jobs={service.get('jobs', '?')}  "
        f"requests={service.get('requests_served', 0)}"
    )
    lines.append("-" * min(width, 100))

    current = status.get("current")
    if current:
        done = current.get("completed", 0)
        cells = max(1, current.get("cells", 1))
        frac = done / cells
        bar_w = 40
        bar = "#" * int(frac * bar_w) + "." * (bar_w - int(frac * bar_w))
        lines.append(
            f"in-flight {current.get('op', '?')}: [{bar}] "
            f"{done}/{current.get('cells', 0)} cells  "
            f"sources={json.dumps(current.get('sources', {}), sort_keys=True)}"
        )
    else:
        lines.append("in-flight: (idle)")

    counters = service.get("counters", {})
    pool = service.get("pool", {})
    store = service.get("store", {})
    lines.append(
        f"pool: alive={pool.get('workers_alive', 0)}  "
        f"tasks={pool.get('tasks', 0)}  warm_hits={pool.get('warm_hits', 0)}  "
        f"respawns={pool.get('respawns', 0)}  "
        f"shm={pool.get('shm_bytes', 0):,}B"
    )
    if store:
        lines.append(
            f"store: entries={store.get('entries', 0)}  "
            f"bytes={store.get('bytes', 0):,}  hits={store.get('hits', 0)}  "
            f"misses={store.get('misses', 0)}  puts={store.get('puts', 0)}"
        )
    cells_total = counters.get("executor.cells", 0)
    lines.append(
        f"executor: cells={cells_total:g}  "
        f"cache_hits={counters.get('executor.cache_hits', 0):g}  "
        f"store_hits={counters.get('executor.store_hits', 0):g}  "
        f"misses={counters.get('executor.cache_misses', 0):g}"
    )

    workers = status.get("workers") or {}
    if workers:
        lines.append("")
        lines.append(f"{'WID':>4} {'TASKS':>8} {'SHARE':>7} {'MAXRSS':>10}  DELTAS")
        total_deltas = sum(r.get("deltas", 0) for r in workers.values()) or 1
        for wid in sorted(workers, key=lambda w: int(w)):
            row = workers[wid]
            w_tasks = row.get("counters", {}).get("worker.tasks", 0)
            rss_kb = row.get("gauges", {}).get("worker.maxrss_kb", 0)
            # Utilization proxy: this worker's share of absorbed deltas.
            deltas = row.get("deltas", 0)
            share = 100.0 * deltas / total_deltas
            lines.append(
                f"{wid:>4} {_fmt_rate(w_tasks):>8} {share:>6.1f}% "
                f"{rss_kb / 1024:>9.1f}M  deltas={deltas}"
            )

    hists = status.get("histograms", {})
    if hists:
        lines.append("")
        lines.append("latency:")
        for name in sorted(hists):
            lines.append(_fmt_hist(name, hists[name]))

    slo = status.get("slo")
    if slo:
        lines.append("")
        lines.append("slo:")
        for row in slo:
            mark = "OK " if row.get("ok") else "VIOLATION"
            obs = row.get("observed")
            obs_s = "n/a" if obs is None else f"{obs:.4g}"
            lines.append(
                f"  [{mark}] {row.get('rule')}  observed={obs_s}"
            )
    return lines


def _poll(url: str, interval_s: float) -> Optional[Dict[str, Any]]:
    try:
        return fetch_status(url, timeout_s=max(2.0, interval_s))
    except (urllib.error.URLError, OSError, json.JSONDecodeError):
        return None


def _run_plain(url: str, interval_s: float, frames: Optional[int]) -> int:
    n = 0
    try:
        while frames is None or n < frames:
            if n:
                time.sleep(interval_s)
            status = _poll(url, interval_s)
            if status is None:
                print(
                    f"repro top: no live plane at {url} "
                    "(is `repro serve --live-port` up?)"
                )
                return 1
            print("\n".join(format_frame(status)))
            print()
            n += 1
    except BrokenPipeError:  # downstream pager/head closed: clean exit
        return 0
    return 0


def _run_curses(url: str, interval_s: float, frames: Optional[int]) -> int:
    import curses

    def _main(stdscr) -> int:
        curses.use_default_colors()
        stdscr.nodelay(True)
        stdscr.timeout(int(interval_s * 1000))
        n = 0
        while frames is None or n < frames:
            status = _poll(url, interval_s)
            height, width = stdscr.getmaxyx()
            stdscr.erase()
            if status is None:
                stdscr.addnstr(0, 0, f"no live plane at {url} — retrying", width - 1)
            else:
                for y, line in enumerate(format_frame(status, width=width)):
                    if y >= height - 1:
                        break
                    stdscr.addnstr(y, 0, line, width - 1)
            stdscr.refresh()
            n += 1
            if frames is not None and n >= frames:
                break
            key = stdscr.getch()  # doubles as the frame sleep (timeout)
            if key in (ord("q"), 27):  # q / ESC
                break
        return 0

    return curses.wrapper(_main)


def run_top(
    url: str,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    plain: bool = False,
) -> int:
    """Run the dashboard; returns a process exit code.

    ``frames`` bounds the run (CI uses ``--frames 2``); ``plain``
    forces the stdout renderer.  Falls back to plain automatically
    when curses is unavailable or stdout is not a terminal, so the
    command never hangs a pipeline.
    """
    import sys

    if not plain:
        try:
            import curses  # noqa: F401
        except ImportError:  # pragma: no cover - stdlib curses missing
            plain = True
        if not sys.stdout.isatty():
            plain = True
    if plain:
        return _run_plain(url, interval_s, frames)
    return _run_curses(url, interval_s, frames)
