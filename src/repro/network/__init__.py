"""Multi-hop network substrate: topology, routing, traffic accounting."""

from .dijkstra import shortest_paths
from .linkquality import apply_etx_metric, etx_weights, prr_from_distance
from .routing import RoutingTree
from .topology import Topology
from .traffic import relay_rates, subtree_rates

__all__ = [
    "RoutingTree",
    "Topology",
    "apply_etx_metric",
    "etx_weights",
    "prr_from_distance",
    "relay_rates",
    "shortest_paths",
    "subtree_rates",
]
