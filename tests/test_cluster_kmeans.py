"""Unit tests for the from-scratch K-means."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans, wcss


class TestKMeans:
    def test_two_obvious_blobs(self, rng):
        a = rng.normal([0, 0], 0.1, size=(20, 2))
        b = rng.normal([10, 10], 0.1, size=(20, 2))
        pts = np.vstack([a, b])
        res = kmeans(pts, 2, rng=rng)
        assert res.converged
        labels_a = set(res.labels[:20].tolist())
        labels_b = set(res.labels[20:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b

    def test_k_equal_n(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        res = kmeans(pts, 3)
        assert res.inertia == 0.0
        assert sorted(res.labels.tolist()) == [0, 1, 2]

    def test_k_greater_than_n_pads(self, rng):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        res = kmeans(pts, 5, rng=rng)
        assert res.centroids.shape == (5, 2)
        assert res.inertia == 0.0

    def test_k_one_centroid_is_mean(self, rng):
        pts = rng.uniform(0, 10, size=(30, 2))
        res = kmeans(pts, 1, rng=rng)
        assert np.allclose(res.centroids[0], pts.mean(axis=0))

    def test_groups_partition_everything(self, rng):
        pts = rng.uniform(0, 10, size=(40, 2))
        res = kmeans(pts, 4, rng=rng)
        all_idx = np.concatenate(res.groups())
        assert sorted(all_idx.tolist()) == list(range(40))

    def test_inertia_matches_wcss(self, rng):
        pts = rng.uniform(0, 10, size=(30, 2))
        res = kmeans(pts, 3, rng=rng)
        assert res.inertia == pytest.approx(wcss(pts, res.centroids, res.labels))

    def test_deterministic_default_rng(self, rng):
        pts = rng.uniform(0, 10, size=(25, 2))
        r1 = kmeans(pts, 3)
        r2 = kmeans(pts, 3)
        assert np.array_equal(r1.labels, r2.labels)

    def test_more_clusters_never_worse(self, rng):
        pts = rng.uniform(0, 10, size=(50, 2))
        i2 = kmeans(pts, 2, rng=np.random.default_rng(0), n_init=8).inertia
        i5 = kmeans(pts, 5, rng=np.random.default_rng(0), n_init=8).inertia
        assert i5 <= i2 + 1e-9

    def test_labels_are_nearest_centroid(self, rng):
        pts = rng.uniform(0, 10, size=(40, 2))
        res = kmeans(pts, 4, rng=rng)
        d = np.linalg.norm(pts[:, None, :] - res.centroids[None, :, :], axis=2)
        assert np.array_equal(res.labels, np.argmin(d, axis=1))

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 1)
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, 1, max_iter=0)
        with pytest.raises(ValueError):
            kmeans(pts, 1, n_init=0)

    def test_duplicate_points(self):
        pts = np.zeros((10, 2))
        res = kmeans(pts, 2)
        assert res.inertia == 0.0
