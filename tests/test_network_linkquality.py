"""Tests for the PRR / ETX link-quality model."""

import numpy as np
import pytest

from repro.energy.consumption import RadioModel
from repro.network.dijkstra import shortest_paths
from repro.network.linkquality import apply_etx_metric, etx_weights, prr_from_distance
from repro.network.routing import RoutingTree
from repro.network.topology import Topology


class TestPRR:
    def test_perfect_inside_grey_start(self):
        prr = prr_from_distance(np.array([0.0, 6.9]), 10.0, grey_start_fraction=0.7)
        assert np.allclose(prr, 1.0)

    def test_edge_value(self):
        prr = prr_from_distance(np.array([10.0]), 10.0, edge_prr=0.5)
        assert prr[0] == pytest.approx(0.5)

    def test_linear_in_grey_region(self):
        prr = prr_from_distance(np.array([8.5]), 10.0, grey_start_fraction=0.7, edge_prr=0.5)
        assert prr[0] == pytest.approx(1.0 - 0.5 * 0.5)  # halfway through the grey zone

    def test_zero_beyond_range(self):
        prr = prr_from_distance(np.array([10.1]), 10.0)
        assert prr[0] == 0.0

    def test_monotone_nonincreasing(self):
        d = np.linspace(0, 10, 50)
        prr = prr_from_distance(d, 10.0)
        assert np.all(np.diff(prr) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            prr_from_distance(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            prr_from_distance(np.array([1.0]), 10.0, grey_start_fraction=1.5)
        with pytest.raises(ValueError):
            prr_from_distance(np.array([1.0]), 10.0, edge_prr=0.0)


class TestETX:
    def line_topology(self, spacing=9.0, n=4, rng_m=10.0):
        pts = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
        return Topology(pts, comm_range=rng_m)

    def test_short_links_etx_one(self):
        topo = self.line_topology(spacing=2.0)
        etx = etx_weights(topo)
        assert np.allclose(etx, 1.0)

    def test_edge_links_penalized(self):
        topo = self.line_topology(spacing=9.9)
        etx = etx_weights(topo)
        # PRR near 0.5 -> ETX near 4.
        assert np.all(etx > 3.0)

    def test_apply_etx_keeps_structure(self):
        topo = self.line_topology()
        clone, etx = apply_etx_metric(topo)
        assert np.array_equal(clone.indices, topo.indices)
        assert np.allclose(clone.weights, topo.weights * etx)
        # The original is untouched.
        assert not np.allclose(clone.weights, topo.weights)

    def test_etx_routing_avoids_weak_long_hop(self):
        """Three nodes in a line: 0 --9.5m-- 1 --9.5m-- 2, plus a direct
        0--2 link does not exist (19 m > range).  Now a Y topology where
        a single 9.8 m hop competes with two 5.5 m hops: distance
        routing prefers the single hop, ETX routing the two clean hops."""
        pts = np.array([[0.0, 0.0], [9.8, 0.0], [4.9, 1.5]])
        topo = Topology(pts, comm_range=10.0, base_station=[9.8, 0.1])
        # Distance metric: node 0 goes straight to the base area via node 1
        tree_dist = RoutingTree(topo)
        clone, _ = apply_etx_metric(topo, grey_start_fraction=0.5, edge_prr=0.3)
        dist_etx, parent_etx = shortest_paths(
            clone.indptr, clone.indices, clone.weights, topo.base_index
        )
        # Under ETX the relayed route through node 2 must not be more
        # expensive than the direct grey-zone hop.
        direct = clone.weights[
            clone.indptr[0] : clone.indptr[1]
        ]  # arcs out of node 0
        assert np.isfinite(dist_etx[0])
        assert dist_etx[0] <= direct.max() + 1e-9

    def test_disconnected_beyond_range_unchanged(self):
        pts = np.array([[0.0, 0.0], [50.0, 0.0]])
        topo = Topology(pts, comm_range=10.0)
        clone, etx = apply_etx_metric(topo)
        assert clone.n_edges == 0


class TestDutyCycledRadio:
    def test_duty_cycle_raises_idle_power(self):
        quiet = RadioModel(listen_duty_cycle=0.0)
        lpl = RadioModel(listen_duty_cycle=0.01)
        assert lpl.idle_power_w > quiet.idle_power_w

    def test_full_duty_is_rx_power(self):
        r = RadioModel(listen_duty_cycle=1.0)
        assert r.idle_power_w == pytest.approx(r.rx_current_a * r.voltage_v)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(listen_duty_cycle=1.5)
