"""Tests for the component registries (repro.registry)."""

import numpy as np
import pytest

from repro.core.greedy import GreedyScheduler
from repro.core.scheduling import PlannedRoute
from repro.registry import (
    ACTIVATORS,
    CLUSTERINGS,
    ERC_POLICIES,
    MOBILITY_MODELS,
    SCHEDULERS,
    Registry,
    erc_policy_name,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import make_scheduler, run_simulation


class TestRegistryMechanics:
    def test_builtin_names_present(self):
        assert {"greedy", "insertion", "partition", "combined"} <= set(SCHEDULERS.names())
        assert set(ACTIVATORS.names()) == {"round_robin", "full_time"}
        assert set(ERC_POLICIES.names()) == {"static", "adaptive"}
        assert set(CLUSTERINGS.names()) == {"balanced", "nearest_target"}
        assert set(MOBILITY_MODELS.names()) == {"jump", "waypoint"}

    def test_registration_order_preserved(self):
        assert SCHEDULERS.names()[:4] == ("greedy", "insertion", "partition", "combined")

    def test_contains_and_len(self):
        assert "greedy" in SCHEDULERS
        assert "dijkstra" not in SCHEDULERS
        assert len(SCHEDULERS) == len(SCHEDULERS.names())

    def test_unknown_error_lists_registered_names(self):
        with pytest.raises(ValueError) as exc:
            SCHEDULERS.build("dijkstra", fleet_size=1)
        msg = str(exc.value)
        for name in SCHEDULERS.names():
            assert name in msg

    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", lambda: 2)
        # replace=True overrides.
        reg.register("a", lambda: 3, replace=True)
        assert reg.build("a") == 3

    def test_decorator_registration(self):
        reg = Registry("thing")

        @reg.register("x", schema={"k": "a knob"})
        def build_x(k=0):
            """Builds an x."""
            return ("x", k)

        assert reg.build("x", k=5) == ("x", 5)
        spec = reg.spec("x")
        assert spec.schema == {"k": "a knob"}
        assert spec.doc == "Builds an x."

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(ValueError):
            reg.unregister("a")

    def test_check_returns_name(self):
        assert SCHEDULERS.check("greedy") == "greedy"

    def test_erc_policy_name(self):
        assert erc_policy_name(False) == "static"
        assert erc_policy_name(True) == "adaptive"


class TestMakeSchedulerViaRegistry:
    def test_delegates_to_registry(self):
        assert isinstance(make_scheduler("greedy", 3), GreedyScheduler)

    def test_error_message_tracks_registry(self):
        with pytest.raises(ValueError) as exc:
            make_scheduler("nope", 1)
        assert "combined" in str(exc.value)

    def test_partition_empty_fleet_constructible(self):
        # n_rvs = 0 worlds never consult the scheduler, but they must
        # still construct (hypothesis covers this whole option space).
        s = make_scheduler("partition", 0)
        assert s.fleet_size == 1


class _EveryoneHomeScheduler:
    """Test double: serves every pending request with the first RV."""

    name = "everyone-home"

    def assign(self, requests, idle_rvs, rng):
        if not idle_rvs or len(requests) == 0:
            return {}
        rv = idle_rvs[0]
        reqs = list(requests)
        node_ids = [r.node_id for r in reqs]
        pts = np.vstack([rv.position] + [r.position for r in reqs])
        travel = float(np.sum(np.hypot(*(pts[1:] - pts[:-1]).T)))
        demand = float(sum(r.demand_j for r in reqs))
        for node in node_ids:
            requests.remove(node)
        return {
            rv.rv_id: PlannedRoute(
                node_ids=tuple(node_ids),
                waypoints=pts,
                travel_m=travel,
                demand_j=demand,
                profit_j=demand - rv.em_j_per_m * travel,
            )
        }


class TestRegistryRoundTrip:
    """Register → select by config string → run: no engine edits needed."""

    def test_custom_scheduler_selectable_by_name(self):
        SCHEDULERS.register(
            "everyone-home",
            lambda fleet_size: _EveryoneHomeScheduler(),
            schema={"fleet_size": "unused"},
            doc="Test double serving the whole backlog with one RV.",
        )
        try:
            cfg = SimulationConfig(
                n_sensors=30,
                n_targets=2,
                n_rvs=1,
                side_length_m=50.0,
                sim_time_s=6 * 3600.0,
                battery_capacity_j=300.0,
                initial_charge_range=(0.5, 0.7),
                dispatch_period_s=1800.0,
                tick_s=300.0,
                scheduler="everyone-home",  # config validation consults the registry
                seed=3,
            )
            summary = run_simulation(cfg)
            assert summary.n_recharges > 0
            # The legacy config tuple reflects the registration too.
            from repro.sim import config as config_module

            assert "everyone-home" in config_module.SCHEDULERS
        finally:
            SCHEDULERS.unregister("everyone-home")
        with pytest.raises(ValueError):
            SimulationConfig(scheduler="everyone-home")
