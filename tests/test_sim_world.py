"""Unit and integration tests for the simulation world."""

import numpy as np
import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


def tiny(**overrides):
    defaults = dict(
        n_sensors=40,
        n_targets=3,
        n_rvs=1,
        side_length_m=60.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=400.0,
        initial_charge_range=(0.5, 0.8),
        rv_capacity_j=20_000.0,
        dispatch_period_s=1800.0,
        tick_s=300.0,
        seed=42,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestWorldConstruction:
    def test_builds_consistent_state(self):
        w = World(tiny())
        assert w.sensor_pos.shape == (40, 2)
        assert len(w.bank) == 40
        assert len(w.rvs) == 1
        assert len(w.cluster_set) == 3

    def test_initial_levels_in_range(self):
        w = World(tiny())
        frac = w.bank.fractions
        assert np.all(frac >= 0.5 - 1e-9)
        assert np.all(frac <= 0.8 + 1e-9)

    def test_clusters_only_over_alive_detectors(self):
        w = World(tiny())
        for c in w.cluster_set:
            for s in c.members:
                d = np.hypot(*(w.sensor_pos[s] - w.targets.positions[c.cluster_id]))
                assert d <= w.cfg.sensing_range_m

    def test_snapshot_keys(self):
        w = World(tiny())
        snap = w.snapshot()
        assert snap["sensor_positions"].shape == (40, 2)
        assert snap["alive"].dtype == bool
        assert snap["rv_positions"].shape == (1, 2)


class TestWorldRun:
    def test_deterministic_given_seed(self):
        s1 = World(tiny(seed=7)).run()
        s2 = World(tiny(seed=7)).run()
        assert s1.as_dict() == s2.as_dict()

    def test_seeds_differ(self):
        s1 = World(tiny(seed=1)).run()
        s2 = World(tiny(seed=2)).run()
        assert s1.as_dict() != s2.as_dict()

    def test_energy_books_balance(self):
        w = World(tiny())
        s = w.run()
        delivered_rv = sum(rv.stats.delivered_energy_j for rv in w.rvs)
        assert s.delivered_energy_j == pytest.approx(delivered_rv)
        assert s.traveling_energy_j == pytest.approx(
            s.traveling_distance_m * w.cfg.rv_moving_cost_j_per_m
        )
        assert s.objective_j == pytest.approx(s.delivered_energy_j - s.traveling_energy_j)

    def test_recharges_happen(self):
        s = World(tiny()).run()
        assert s.n_recharges > 0
        assert s.n_requests >= s.n_recharges

    def test_battery_bounds_hold_throughout(self):
        w = World(tiny())
        w.sim.run_until(w.cfg.sim_time_s / 2)
        assert np.all(w.bank.levels_j >= 0.0)
        assert np.all(w.bank.levels_j <= w.cfg.battery_capacity_j + 1e-9)

    def test_metrics_within_bounds(self):
        s = World(tiny()).run()
        assert 0.0 <= s.avg_coverage_ratio <= 1.0
        assert 0.0 <= s.avg_nonfunctional_fraction <= 1.0
        assert s.missing_rate == pytest.approx(1.0 - s.avg_coverage_ratio)

    def test_full_time_activation_runs(self):
        s = World(tiny(activation="full_time")).run()
        assert s.n_recharges > 0

    def test_full_time_consumes_more_sensor_energy(self):
        """Full-time activation drains clusters faster, so RVs must
        deliver more than under round-robin."""
        rr = World(tiny(sim_time_s=1 * DAY_S)).run()
        ft = World(tiny(sim_time_s=1 * DAY_S, activation="full_time")).run()
        assert ft.delivered_energy_j > rr.delivered_energy_j

    def test_all_schedulers_run(self):
        for sched in ("greedy", "insertion", "partition", "combined"):
            s = World(tiny(scheduler=sched, n_rvs=2)).run()
            assert s.n_recharges > 0, sched

    def test_nearest_target_clustering_runs(self):
        s = World(tiny(clustering="nearest_target")).run()
        assert s.n_recharges > 0

    def test_erp_gate_reduces_requests(self):
        """Higher ERP can only postpone releases, never add them."""
        lo = World(tiny(erp=0.0, sim_time_s=1 * DAY_S)).run()
        hi = World(tiny(erp=1.0, sim_time_s=1 * DAY_S)).run()
        assert hi.n_requests <= lo.n_requests + 5  # allow re-request slack

    def test_zero_targets(self):
        s = World(tiny(n_targets=0)).run()
        assert s.avg_coverage_ratio == 1.0

    def test_zero_rvs_no_recharges(self):
        s = World(tiny(n_rvs=0)).run()
        assert s.n_recharges == 0
        assert s.traveling_distance_m == 0.0

    def test_rv_returns_within_field(self):
        w = World(tiny())
        w.run()
        for rv in w.rvs:
            assert 0 <= rv.position[0] <= w.cfg.side_length_m
            assert 0 <= rv.position[1] <= w.cfg.side_length_m
