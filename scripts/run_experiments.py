#!/usr/bin/env python
"""Run the full figure-reproduction suite and persist tables + JSON.

This is the script behind EXPERIMENTS.md: it executes Fig. 4, the ERP
sweep (Figs. 5, 6a-d, 7a-b), the headline-claim derivation and the
ablations at the chosen scale, writing everything under
``results/<scale>/``.

Usage:  REPRO_SCALE=paper python scripts/run_experiments.py
"""

import json
import pathlib
import sys
import time

from repro.experiments import (
    ERP_GRID,
    activity_saving_percent,
    current_scale,
    format_fig4,
    format_fig5,
    format_fig7_panel,
    format_headline,
    format_panel,
    panel_a,
    panel_b,
    panel_c,
    panel_d,
    run_fig4,
    run_fig6,
)
from repro.experiments.ablation_clustering import format_ablation, run_ablation, static_balance
from repro.experiments.fig7_profit import panel_a as fig7a
from repro.experiments.fig7_profit import panel_b as fig7b


def main() -> None:
    scale = current_scale()
    out_dir = pathlib.Path("results") / scale.name
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"scale={scale.name}: {scale.days} days x seeds {scale.seeds}", flush=True)

    t0 = time.time()
    print("[1/4] Fig. 4 ...", flush=True)
    fig4 = run_fig4(scale)
    fig4_txt = format_fig4(fig4)
    savings = activity_saving_percent(fig4)
    print(fig4_txt, flush=True)
    print("savings vs baseline:", {k: round(v, 1) for k, v in savings.items()}, flush=True)

    print("[2/4] ERP sweep (Figs. 5, 6, 7) ...", flush=True)
    sweep = run_fig6(scale)
    g = sweep["greedy"]
    fig5 = {
        "erp": list(ERP_GRID),
        "traveling_energy_mj": [v / 1e6 for v in g["traveling_energy_j"]],
        "missing_rate_pct": [100.0 * (1.0 - v) for v in g["avg_coverage_ratio"]],
    }
    tables = {
        "fig4": fig4_txt,
        "fig5": format_fig5(fig5),
        "fig6a": format_panel("a", panel_a(sweep)),
        "fig6b": format_panel("b", panel_b(sweep)),
        "fig6c": format_panel("c", panel_c(sweep)),
        "fig6d": format_panel("d", panel_d(sweep)),
        "fig7a": format_fig7_panel("a", fig7a(sweep)),
        "fig7b": format_fig7_panel("b", fig7b(sweep)),
    }

    print("[3/4] headline claims ...", flush=True)
    import numpy as np

    act_mean = float(np.mean(list(savings.values())))

    def mean(s, m):
        return float(np.mean(sweep[s][m]))

    def pct(base, ours):
        return 100.0 * (base - ours) / base if base > 0 else 0.0

    headline = {
        "activity_mgmt_saving_pct": act_mean,
        "partition_distance_saving_pct": pct(
            mean("greedy", "traveling_distance_m"), mean("partition", "traveling_distance_m")
        ),
        "combined_distance_saving_pct": pct(
            mean("greedy", "traveling_distance_m"), mean("combined", "traveling_distance_m")
        ),
        "partition_nonfunctional_reduction_pct": pct(
            mean("greedy", "avg_nonfunctional_fraction"),
            mean("partition", "avg_nonfunctional_fraction"),
        ),
        "combined_nonfunctional_reduction_pct": pct(
            mean("greedy", "avg_nonfunctional_fraction"),
            mean("combined", "avg_nonfunctional_fraction"),
        ),
    }
    tables["headline"] = format_headline(headline)

    print("[4/4] clustering ablation ...", flush=True)
    static = static_balance(seeds=10)
    dynamic = run_ablation(scale)
    tables["ablation_clustering"] = format_ablation(static, dynamic)

    for name, txt in tables.items():
        (out_dir / f"{name}.txt").write_text(txt + "\n")
        print("\n" + txt, flush=True)

    payload = {
        "scale": scale.name,
        "days": scale.days,
        "seeds": list(scale.seeds),
        "fig4_mj": fig4,
        "fig4_savings_pct": savings,
        "fig5": fig5,
        "sweep": sweep,
        "headline": headline,
        "ablation_static_spread": static,
        "ablation_dynamic": dynamic,
        "elapsed_s": time.time() - t0,
    }
    (out_dir / "results.json").write_text(json.dumps(payload, indent=2))
    print(f"\ndone in {time.time() - t0:.0f}s -> {out_dir}/", flush=True)


if __name__ == "__main__":
    sys.exit(main())
