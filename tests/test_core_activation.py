"""Unit tests for the activation schemes (Section III-C)."""

import numpy as np

from repro.core.activation import FullTimeActivator, RoundRobinActivator
from repro.core.clustering import Cluster, ClusterSet


def make_cs():
    """Two clusters (sizes 3 and 2) over 6 sensors; sensor 5 unclustered."""
    return ClusterSet([Cluster(0, [0, 1, 2]), Cluster(1, [3, 4])], n_sensors=6)


class TestFullTime:
    def test_all_alive_members_active(self):
        act = FullTimeActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        assert act.active_mask(alive).tolist() == [True] * 5 + [False]

    def test_dead_members_inactive(self):
        act = FullTimeActivator(make_cs())
        alive = np.array([True, False, True, False, False, True])
        assert act.active_mask(alive).tolist() == [True, False, True, False, False, False]

    def test_covered_mask(self):
        act = FullTimeActivator(make_cs())
        alive = np.array([False, False, False, True, True, True])
        assert act.covered_mask(alive).tolist() == [False, True]

    def test_rotate_noop(self):
        act = FullTimeActivator(make_cs())
        assert len(act.rotate(np.ones(6, dtype=bool))) == 0


class TestRoundRobin:
    def test_starts_at_lowest_id(self):
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        assert act.active_sensor_per_cluster(alive).tolist() == [0, 3]

    def test_one_active_per_cluster(self):
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        mask = act.active_mask(alive)
        assert mask.sum() == 2

    def test_rotation_cycles(self):
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        seq = []
        for _ in range(6):
            seq.append(act.active_sensor_per_cluster(alive)[0])
            act.rotate(alive)
        assert seq == [0, 1, 2, 0, 1, 2]

    def test_rotation_skips_dead(self):
        act = RoundRobinActivator(make_cs())
        alive = np.array([True, False, True, True, True, True])
        assert act.active_sensor_per_cluster(alive)[0] == 0
        act.rotate(alive)
        assert act.active_sensor_per_cluster(alive)[0] == 2  # skipped 1

    def test_handoffs_reported(self):
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        handoffs = act.rotate(alive)
        # Cluster 0: 0 -> 1; cluster 1: 3 -> 4.
        assert handoffs.tolist() == [[0, 1], [3, 4]]

    def test_no_handoff_single_alive(self):
        act = RoundRobinActivator(make_cs())
        alive = np.array([True, False, False, True, False, False])
        handoffs = act.rotate(alive)
        assert len(handoffs) == 0

    def test_all_dead_cluster_uncovered(self):
        act = RoundRobinActivator(make_cs())
        alive = np.array([False, False, False, True, True, True])
        assert act.covered_mask(alive).tolist() == [False, True]
        assert act.active_sensor_per_cluster(alive)[0] == -1

    def test_empty_cluster(self):
        cs = ClusterSet([Cluster(0, np.array([], dtype=np.intp))], n_sensors=3)
        act = RoundRobinActivator(cs)
        alive = np.ones(3, dtype=bool)
        assert act.active_sensor_per_cluster(alive).tolist() == [-1]
        assert len(act.rotate(alive)) == 0

    def test_unclustered_never_active(self):
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        for _ in range(5):
            assert not act.active_mask(alive)[5]
            act.rotate(alive)

    def test_energy_balance_over_full_cycle(self):
        """Over nc rotations every member serves exactly once."""
        act = RoundRobinActivator(make_cs())
        alive = np.ones(6, dtype=bool)
        served = {0: 0, 1: 0, 2: 0}
        for _ in range(6):  # two full cycles of cluster 0
            s = act.active_sensor_per_cluster(alive)[0]
            served[int(s)] += 1
            act.rotate(alive)
        assert set(served.values()) == {2}
