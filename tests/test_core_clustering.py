"""Unit tests for Algorithm 1 (balanced clustering) and the baseline."""

import numpy as np
import pytest

from repro.core.clustering import (
    Cluster,
    ClusterSet,
    balanced_clustering,
    nearest_target_clustering,
)
from repro.geometry.coverage import detection_matrix


class TestCluster:
    def test_members_sorted(self):
        c = Cluster(0, np.array([5, 1, 3]))
        assert c.members.tolist() == [1, 3, 5]
        assert c.size == 3


class TestClusterSet:
    def test_membership_map(self):
        cs = ClusterSet([Cluster(0, [0, 2]), Cluster(1, [1])], n_sensors=4)
        assert cs.membership.tolist() == [0, 1, 0, -1]
        assert cs.cluster_of(3) == -1
        assert cs.clustered_mask().tolist() == [True, True, True, False]

    def test_rejects_double_assignment(self):
        with pytest.raises(ValueError):
            ClusterSet([Cluster(0, [0, 1]), Cluster(1, [1])], n_sensors=3)

    def test_sizes_and_spread(self):
        cs = ClusterSet([Cluster(0, [0, 1, 2]), Cluster(1, [3])], n_sensors=4)
        assert cs.sizes().tolist() == [3, 1]
        assert cs.spread() == 2


class TestBalancedClustering:
    def test_simple_two_targets(self):
        # Four sensors all within range of both targets: balance 2/2.
        sensors = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        targets = np.array([[0.4, 0.5], [0.6, 0.5]])
        cs = balanced_clustering(sensors, targets, sensing_range=5.0)
        assert sorted(cs.sizes().tolist()) == [2, 2]

    def test_each_sensor_at_most_one_cluster(self, rng):
        sensors = rng.uniform(0, 100, size=(200, 2))
        targets = rng.uniform(0, 100, size=(8, 2))
        cs = balanced_clustering(sensors, targets, sensing_range=15.0)
        counts = np.zeros(200, dtype=int)
        for c in cs:
            counts[c.members] += 1
        assert counts.max() <= 1

    def test_members_can_detect_their_target(self, rng):
        sensors = rng.uniform(0, 100, size=(150, 2))
        targets = rng.uniform(0, 100, size=(6, 2))
        ds = 12.0
        cs = balanced_clustering(sensors, targets, ds)
        det = detection_matrix(sensors, targets, ds)
        for c in cs:
            for s in c.members:
                assert det[s, c.cluster_id]

    def test_every_covering_sensor_assigned(self, rng):
        """Phase 2 assigns every sensor in the pool A."""
        sensors = rng.uniform(0, 60, size=(120, 2))
        targets = rng.uniform(0, 60, size=(5, 2))
        ds = 10.0
        cs = balanced_clustering(sensors, targets, ds)
        det = detection_matrix(sensors, targets, ds)
        covering = det.any(axis=1)
        assert np.array_equal(cs.clustered_mask(), covering)

    def test_balances_better_than_nearest(self, rng):
        """Across random instances, Algorithm 1's spread never exceeds
        the nearest-target baseline's."""
        worse = 0
        for seed in range(10):
            r = np.random.default_rng(seed)
            sensors = r.uniform(0, 80, size=(150, 2))
            targets = r.uniform(20, 60, size=(4, 2))
            bal = balanced_clustering(sensors, targets, 25.0).spread()
            near = nearest_target_clustering(sensors, targets, 25.0).spread()
            if bal > near:
                worse += 1
        assert worse == 0

    def test_smallest_cluster_priority_invariant(self, rng):
        """No sensor could move to a strictly smaller eligible cluster
        by more than 1 — the greedy fill keeps clusters within one of
        each other wherever eligibility allows."""
        sensors = rng.uniform(0, 50, size=(100, 2))
        targets = rng.uniform(10, 40, size=(4, 2))
        ds = 20.0
        cs = balanced_clustering(sensors, targets, ds)
        det = detection_matrix(sensors, targets, ds)
        sizes = cs.sizes()
        for c in cs:
            for s in c.members:
                for t in np.flatnonzero(det[s]):
                    # Moving s from its cluster to t can't improve balance
                    # by 2 or more.
                    assert sizes[c.cluster_id] <= sizes[t] + 1 or sizes[t] + 1 >= sizes.min()

    def test_uncoverable_target_gets_empty_cluster(self):
        sensors = np.array([[0.0, 0.0]])
        targets = np.array([[0.5, 0.0], [99.0, 99.0]])
        cs = balanced_clustering(sensors, targets, 2.0)
        assert cs.sizes().tolist() == [1, 0]

    def test_no_targets(self, rng):
        sensors = rng.uniform(0, 10, size=(5, 2))
        cs = balanced_clustering(sensors, np.empty((0, 2)), 2.0)
        assert len(cs) == 0
        assert not cs.clustered_mask().any()

    def test_no_sensors(self):
        cs = balanced_clustering(np.empty((0, 2)), np.array([[1.0, 1.0]]), 2.0)
        assert cs.sizes().tolist() == [0]


class TestNearestTargetClustering:
    def test_assigns_to_nearest(self):
        sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
        targets = np.array([[1.0, 0.0], [9.0, 0.0]])
        cs = nearest_target_clustering(sensors, targets, 5.0)
        assert cs.membership.tolist() == [0, 1]

    def test_out_of_range_unassigned(self):
        sensors = np.array([[0.0, 0.0]])
        targets = np.array([[50.0, 0.0]])
        cs = nearest_target_clustering(sensors, targets, 5.0)
        assert cs.membership.tolist() == [-1]

    def test_can_be_unbalanced(self):
        # Three sensors near target 0, one near target 1.
        sensors = np.array([[0, 0], [0.1, 0], [0, 0.1], [10, 10]], dtype=float)
        targets = np.array([[0.0, 0.0], [10.0, 10.0]])
        cs = nearest_target_clustering(sensors, targets, 1.0)
        assert cs.sizes().tolist() == [3, 1]
