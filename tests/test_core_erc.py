"""Unit tests for Energy Request Control (Section III-B)."""

import numpy as np
import pytest

from repro.core.clustering import Cluster, ClusterSet
from repro.core.erc import (
    EnergyRequestController,
    erc_travel_energy_bound,
    release_count_needed,
)


def make_cs():
    return ClusterSet([Cluster(0, [0, 1, 2, 3]), Cluster(1, [4, 5])], n_sensors=8)


class TestReleaseCount:
    def test_zero_erp_releases_on_first(self):
        assert release_count_needed(5, 0.0) == 1

    def test_full_erp_needs_all(self):
        assert release_count_needed(5, 1.0) == 5

    def test_fractional_rounds_up(self):
        assert release_count_needed(5, 0.5) == 3
        assert release_count_needed(4, 0.5) == 2

    def test_empty_cluster(self):
        assert release_count_needed(0, 0.7) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            release_count_needed(-1, 0.5)
        with pytest.raises(ValueError):
            release_count_needed(3, 1.5)


class TestTravelBound:
    def test_k_zero_worst_case(self):
        # 2 * nc * dist * em
        assert erc_travel_energy_bound(4, 100.0, 5.6, 0.0) == pytest.approx(2 * 4 * 100 * 5.6)

    def test_k_one_single_trip(self):
        # 2 * dist * em — one trip serves the whole cluster.
        assert erc_travel_energy_bound(4, 100.0, 5.6, 1.0) == pytest.approx(2 * 100 * 5.6)

    def test_monotone_decreasing_in_k(self):
        vals = [erc_travel_energy_bound(6, 50.0, 5.6, k) for k in (0.0, 0.3, 0.6, 1.0)]
        assert all(vals[i] >= vals[i + 1] for i in range(len(vals) - 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            erc_travel_energy_bound(3, -1.0, 5.6, 0.5)


class TestController:
    def test_erp_zero_is_immediate(self):
        ctl = EnergyRequestController(0.0)
        below = np.zeros(8, dtype=bool)
        below[1] = True
        out = ctl.nodes_to_release(make_cs(), below, np.zeros(8, dtype=bool))
        assert out == [1]

    def test_gate_holds_until_count(self):
        ctl = EnergyRequestController(0.75)  # needs 3 of 4 in cluster 0
        below = np.zeros(8, dtype=bool)
        below[[0, 1]] = True
        assert ctl.nodes_to_release(make_cs(), below, np.zeros(8, dtype=bool)) == []
        below[2] = True
        assert ctl.nodes_to_release(make_cs(), below, np.zeros(8, dtype=bool)) == [0, 1, 2]

    def test_whole_backlog_released_at_once(self):
        ctl = EnergyRequestController(1.0)
        below = np.zeros(8, dtype=bool)
        below[[4, 5]] = True
        assert ctl.nodes_to_release(make_cs(), below, np.zeros(8, dtype=bool)) == [4, 5]

    def test_already_requested_not_rereleased(self):
        ctl = EnergyRequestController(0.0)
        below = np.zeros(8, dtype=bool)
        below[[0, 1]] = True
        listed = np.zeros(8, dtype=bool)
        listed[0] = True
        assert ctl.nodes_to_release(make_cs(), below, listed) == [1]

    def test_listed_nodes_count_toward_gate(self):
        """A member already on the list still counts as 'below threshold'
        for the percentage."""
        ctl = EnergyRequestController(0.5)  # needs 2 of 4
        below = np.zeros(8, dtype=bool)
        below[[0, 1]] = True
        listed = np.zeros(8, dtype=bool)
        listed[0] = True
        assert ctl.nodes_to_release(make_cs(), below, listed) == [1]

    def test_unclustered_always_release(self):
        ctl = EnergyRequestController(1.0)
        below = np.zeros(8, dtype=bool)
        below[[6, 7]] = True  # unclustered sensors
        assert ctl.nodes_to_release(make_cs(), below, np.zeros(8, dtype=bool)) == [6, 7]

    def test_mask_shape_validation(self):
        ctl = EnergyRequestController(0.5)
        with pytest.raises(ValueError):
            ctl.nodes_to_release(make_cs(), np.zeros(3, dtype=bool), np.zeros(8, dtype=bool))

    def test_erp_validation(self):
        with pytest.raises(ValueError):
            EnergyRequestController(-0.1)
        with pytest.raises(ValueError):
            EnergyRequestController(1.1)

    def test_higher_erp_releases_subset(self):
        """Anything released under a high ERP is also released under a
        lower one (the gate is monotone)."""
        cs = make_cs()
        rng = np.random.default_rng(3)
        for _ in range(20):
            below = rng.random(8) < 0.5
            lo = set(EnergyRequestController(0.2).nodes_to_release(cs, below, np.zeros(8, bool)))
            hi = set(EnergyRequestController(0.9).nodes_to_release(cs, below, np.zeros(8, bool)))
            assert hi <= lo
