"""Tests for the opt-in experiment results cache."""

import json


from repro.experiments.cache import (
    cache_dir,
    cached_run,
    cached_run_seeds,
    config_key,
    summary_from_dict,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation


def quick_cfg(**kw):
    base = dict(sim_time_s=0.2 * 86400, seed=5)
    base.update(kw)
    return SimulationConfig.small(**base)


class TestCacheKey:
    def test_stable(self):
        assert config_key(quick_cfg()) == config_key(quick_cfg())

    def test_sensitive_to_any_field(self):
        assert config_key(quick_cfg()) != config_key(quick_cfg(seed=6))
        assert config_key(quick_cfg()) != config_key(quick_cfg(erp=0.5))

    def test_sensitive_to_code_version(self, monkeypatch):
        # The key embeds the package version + git revision: a code
        # change must never replay cells produced by older code.
        from repro.experiments import cache as cache_mod

        base = config_key(quick_cfg())
        monkeypatch.setattr(
            cache_mod,
            "code_token",
            lambda: {"version": "999.0", "git_rev": "deadbeef"},
        )
        assert config_key(quick_cfg()) != base

    def test_code_token_fields(self):
        from repro.experiments.cache import code_token

        token = code_token()
        assert token["version"]
        # In this checkout the package lives in a git repo.
        assert "git_rev" in token


class TestSummaryRoundtrip:
    def test_from_dict(self):
        s = run_simulation(quick_cfg())
        rebuilt = summary_from_dict(s.as_dict())
        assert rebuilt == s
        assert isinstance(rebuilt.n_recharges, int)


class TestCachedRun:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_dir() is None
        s = cached_run(quick_cfg())
        assert s.sim_time_s > 0

    def test_hit_returns_identical(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        first = cached_run(quick_cfg())
        assert len(list(tmp_path.glob("*.json"))) == 1
        second = cached_run(quick_cfg())
        assert second == first

    def test_hit_skips_execution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        cfg = quick_cfg()
        cached_run(cfg)
        # Poison the cache entry: if the second call re-ran, it would
        # not see the sentinel value.
        path = next(tmp_path.glob("*.json"))
        data = json.loads(path.read_text())
        data["traveling_distance_m"] = 123456.0
        path.write_text(json.dumps(data))
        assert cached_run(cfg).traveling_distance_m == 123456.0

    def test_seed_fanout_mixed_hits(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        cfg = quick_cfg()
        first = cached_run_seeds(cfg, [1, 2])
        assert len(list(tmp_path.glob("*.json"))) == 2
        # Seed 3 is a miss, 1 and 2 hit.
        out = cached_run_seeds(cfg, [1, 2, 3])
        assert len(out) == 3
        assert len(list(tmp_path.glob("*.json"))) == 3
        assert out[0] == first[0] and out[1] == first[1]

    def test_run_cell_uses_cache(self, monkeypatch, tmp_path):
        from repro.experiments.common import ExperimentScale, run_cell

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        scale = ExperimentScale("micro", days=0.2, seeds=(1,))
        kwargs = dict(
            n_sensors=30, n_targets=2, side_length_m=50.0,
            battery_capacity_j=300.0, initial_charge_range=(0.5, 0.8),
        )
        a = run_cell(scale, **kwargs)
        assert list(tmp_path.glob("*.json"))
        b = run_cell(scale, **kwargs)
        assert a == b
