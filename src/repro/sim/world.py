"""The WRSN simulation world.

Wires every substrate together and drives the paper's joint loop:

* targets relocate on their period -> clusters are re-formed with the
  balanced clustering algorithm over the currently alive sensors;
* the activation scheme (round-robin or full-time) decides who burns
  active-sensing power; relay load from multi-hop reporting is charged
  along the routing tree;
* battery state advances *analytically* between events (piecewise
  constant power), so the engine only fires bookkeeping ticks, target
  relocations and RV legs;
* the Energy Request Control gate releases recharge requests per
  cluster; the configured scheduler assigns sorties to idle RVs; RVs
  drive, charge nodes to full, return to the depot to refill their own
  budget when they cannot afford the next job.

The world is deterministic given its config (a single RNG seed drives
deployment, targets, and any scheduler randomness).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.activation import FullTimeActivator, RoundRobinActivator
from ..core.clustering import Cluster, ClusterSet, balanced_clustering, nearest_target_clustering
from ..core.erc import AdaptiveEnergyRequestController, EnergyRequestController
from ..core.requests import RechargeNodeList, RechargeRequest
from ..core.scheduling import RVView, Scheduler
from ..geometry.field import Field
from ..mobility.targets import TargetProcess
from ..mobility.vehicles import RechargingVehicle
from ..network.routing import RoutingTree
from ..network.topology import Topology
from .config import SimulationConfig
from .engine import Simulator
from .metrics import MetricsCollector, SimulationSummary
from .trace import EventKind, NullRecorder

__all__ = ["World"]

# Event priorities: energy/structure updates before scheduling.
_PRIO_RELOCATE = 0
_PRIO_TICK = 1
_PRIO_DISPATCH = 2
_PRIO_RV = 3


class World:
    """One fully wired simulation instance.

    Args:
        config: the run parameters.
        scheduler: a scheduler instance; when omitted the world builds
            the one named by ``config.scheduler`` via
            :func:`repro.sim.runner.make_scheduler`.
        trace: optional :class:`~repro.sim.trace.TraceRecorder`; when
            given, every semantic event and metric sample is recorded.
    """

    def __init__(
        self,
        config: SimulationConfig,
        scheduler: Optional[Scheduler] = None,
        trace=None,
    ) -> None:
        self.cfg = config
        self.trace = trace if trace is not None else NullRecorder()
        self.rng = np.random.default_rng(config.seed)
        self.sim = Simulator()
        self.field = Field(config.side_length_m)

        # --- sensors ---
        self.sensor_pos = self.field.deploy_uniform(config.n_sensors, self.rng)
        from ..energy.battery import BatteryBank  # local import avoids cycle at module load

        self.bank = BatteryBank(
            config.n_sensors,
            capacity_j=config.battery_capacity_j,
            threshold_fraction=config.threshold_fraction,
        )
        lo, hi = config.initial_charge_range
        self.bank.levels_j = (
            self.rng.uniform(lo, hi, size=config.n_sensors) * config.battery_capacity_j
        )
        self.power = config.power_model
        self._per_packet_relay_j = self.power.relay_power_w(1.0)
        self._notification_j = self.power.notification_energy_j()

        # --- static network (positions never move) ---
        self.topology = Topology(
            self.sensor_pos, config.comm_range_m, base_station=self.field.base_station
        )
        if config.routing_metric == "etx":
            from ..network.linkquality import apply_etx_metric, prr_from_distance

            etx_topology, _ = apply_etx_metric(self.topology)
            self.routing = RoutingTree(etx_topology)
            # Expected transmissions on each sensor's uplink: packets
            # relayed over a grey-zone link cost ETX times the energy.
            n = config.n_sensors
            self._uplink_etx = np.ones(n, dtype=np.float64)
            for v in range(n):
                p = self.routing.parent[v]
                if p >= 0:
                    hop = float(np.hypot(*(self.topology.points[v] - self.topology.points[p])))
                    prr = float(prr_from_distance(np.array([hop]), config.comm_range_m)[0])
                    self._uplink_etx[v] = 1.0 / (prr * prr) if prr > 0 else 1.0
        else:
            self.routing = RoutingTree(self.topology)
            self._uplink_etx = np.ones(config.n_sensors, dtype=np.float64)
        # Farthest-first order for the linear relay-load pass, computed once.
        self._traffic_order = np.argsort(self.routing.dist, kind="stable")[::-1]

        # --- targets & clusters ---
        if config.target_mobility == "waypoint":
            from ..mobility.waypoint import RandomWaypointProcess

            self.targets = RandomWaypointProcess(
                self.field,
                config.n_targets,
                config.target_period_s,
                self.rng,
                speed_mps=config.target_speed_mps,
            )
        else:
            self.targets = TargetProcess(
                self.field, config.n_targets, config.target_period_s, self.rng
            )
        self.cluster_set: ClusterSet
        self.activator = None  # set by _rebuild_clusters
        self._rebuild_clusters()

        # --- recharge machinery ---
        if scheduler is None:
            from .runner import make_scheduler

            scheduler = make_scheduler(config.scheduler, config.n_rvs)
        self.scheduler = scheduler
        if config.adaptive_erp:
            self.erc: EnergyRequestController = AdaptiveEnergyRequestController(
                initial_erp=config.erp
            )
        else:
            self.erc = EnergyRequestController(config.erp)
        self.requests = RechargeNodeList()
        self.requested = np.zeros(config.n_sensors, dtype=bool)
        self.rvs: List[RechargingVehicle] = [
            RechargingVehicle(
                rv_id=i,
                depot=self.field.base_station,
                speed_mps=config.rv_speed_mps,
                moving_cost_j_per_m=config.rv_moving_cost_j_per_m,
                capacity_j=config.rv_capacity_j,
            )
            for i in range(config.n_rvs)
        ]
        self._returning = np.zeros(config.n_rvs, dtype=bool)

        # --- accounting ---
        self.metrics = MetricsCollector()
        self._last_energy_t = 0.0
        self._rates = np.zeros(config.n_sensors, dtype=np.float64)
        self._energy_breakdown_j = {
            "idle": 0.0,
            "sensing": 0.0,
            "relay": 0.0,
            "leakage": 0.0,
            "notifications": 0.0,
        }
        self._recompute_rates()
        self._record_metrics()

        # --- initial events ---
        self.sim.schedule(config.tick_s, self._on_tick, priority=_PRIO_TICK)
        self.sim.schedule(config.target_period_s, self._on_relocate, priority=_PRIO_RELOCATE)
        self.sim.schedule(
            config.dispatch_period_s, self._on_dispatch_round, priority=_PRIO_DISPATCH
        )

    # ------------------------------------------------------------------
    # cluster / activation state
    # ------------------------------------------------------------------

    def _rebuild_clusters(self) -> None:
        """Re-form clusters over the alive sensors for the current targets."""
        from ..geometry.coverage import detection_matrix

        # A target is *coverable* if any deployed sensor (alive or not)
        # could see it: the coverage-ratio metric is normalized against
        # these, so it reports scheduling quality, not deployment luck.
        det = detection_matrix(self.sensor_pos, self.targets.positions, self.cfg.sensing_range_m)
        self._coverable = det.any(axis=0)
        alive_idx = np.flatnonzero(self.bank.alive_mask())
        cluster_fn = (
            balanced_clustering
            if getattr(self.cfg, "clustering", "balanced") == "balanced"
            else nearest_target_clustering
        )
        local = cluster_fn(
            self.sensor_pos[alive_idx], self.targets.positions, self.cfg.sensing_range_m
        )
        clusters = [
            Cluster(c.cluster_id, alive_idx[c.members]) if c.size else Cluster(c.cluster_id, c.members)
            for c in local
        ]
        self.cluster_set = ClusterSet(clusters, self.cfg.n_sensors)
        if self.cfg.activation == "round_robin":
            self.activator = RoundRobinActivator(self.cluster_set)
        else:
            self.activator = FullTimeActivator(self.cluster_set)

    def _recompute_rates(self) -> None:
        """Refresh the per-sensor power-draw vector (Watts).

        Also keeps the per-category totals (idle / sensing / relay /
        leakage, in Watts) used by :meth:`energy_breakdown`.
        """
        alive = self.bank.alive_mask()
        active = self.activator.active_mask(alive)
        n = self.cfg.n_sensors
        rates = np.zeros(n, dtype=np.float64)
        rates[alive] = self.power.idle_power_w
        rates[active] += self.power.active_sensing_power_w
        # Relay load: push each active origin's packet rate down the
        # routing tree (farthest vertex first), skipping dead relays'
        # consumption (they can't forward).
        through = np.zeros(n + 1, dtype=np.float64)
        connected = np.isfinite(self.routing.dist[:n])
        origins = active & connected
        through[:n][origins] = self.power.packet_rate_hz
        parent = self.routing.parent
        base = self.routing.base
        for v in self._traffic_order:
            if v == base or through[v] == 0.0:
                continue
            p = parent[v]
            if p >= 0:
                through[p] += through[v]
        relay = through[:n] - np.where(origins, self.power.packet_rate_hz, 0.0)
        relay_w = np.where(alive, relay * self._per_packet_relay_j * self._uplink_etx, 0.0)
        rates += relay_w
        leak_total = 0.0
        if self.cfg.self_discharge_fraction_per_day > 0:
            # Charge-proportional leakage, frozen at the current level
            # until the next rate recomputation (piecewise-linear
            # approximation of the exponential decay).
            leak_per_s = self.cfg.self_discharge_fraction_per_day / 86400.0
            leak_w = np.where(alive, self.bank.levels_j * leak_per_s, 0.0)
            rates += leak_w
            leak_total = float(leak_w.sum())
        rates[~alive] = 0.0
        self._rates = rates
        self._active = active
        self._category_watts = {
            "idle": float(np.count_nonzero(alive)) * self.power.idle_power_w,
            "sensing": float(np.count_nonzero(active)) * self.power.active_sensing_power_w,
            "relay": float(relay_w.sum()),
            "leakage": leak_total,
        }

    # ------------------------------------------------------------------
    # energy accounting & metrics
    # ------------------------------------------------------------------

    def _advance_energy(self) -> None:
        """Drain batteries for the elapsed interval; handle depletions."""
        dt = self.sim.now - self._last_energy_t
        if dt > 0:
            was_alive = self.bank.alive_mask()
            self.bank.drain_rates(self._rates, dt)
            for cat, watts in self._category_watts.items():
                self._energy_breakdown_j[cat] += watts * dt
            self._last_energy_t = self.sim.now
            died = was_alive & ~self.bank.alive_mask()
            if np.any(died):
                if self.trace.enabled:
                    for s in np.flatnonzero(died):
                        self.trace.emit(self.sim.now, EventKind.SENSOR_DEPLETED, int(s))
                observe = getattr(self.erc, "observe_deaths", None)
                if observe is not None:
                    observe(int(np.count_nonzero(died)))
                # Depleted sensors stop sensing and relaying.
                self._recompute_rates()

    def _record_metrics(self) -> None:
        alive = self.bank.alive_mask()
        coverable = self._coverable
        if np.any(coverable):
            covered = self.activator.covered_mask(alive)
            coverage = float(np.mean(covered[coverable]))
        else:
            coverage = 1.0
        nonfunctional = float(np.mean(~alive)) if self.cfg.n_sensors > 0 else 0.0
        operational = float(np.count_nonzero(alive))
        self.metrics.record(self.sim.now, coverage, nonfunctional, operational)
        if self.trace.enabled:
            now = self.sim.now
            self.trace.sample_series(now, "coverage", coverage)
            self.trace.sample_series(now, "nonfunctional", nonfunctional)
            self.trace.sample_series(now, "operational", operational)
            self.trace.sample_series(now, "backlog", float(len(self.requests)))

    # ------------------------------------------------------------------
    # request release & scheduling
    # ------------------------------------------------------------------

    def _check_requests(self) -> bool:
        """Run the ERC gate; returns True if anything was released."""
        below = self.bank.below_threshold_mask()
        to_release = self.erc.nodes_to_release(self.cluster_set, below, self.requested)
        for s in to_release:
            self.requests.add(
                RechargeRequest(
                    node_id=int(s),
                    position=self.sensor_pos[s],
                    demand_j=float(self.bank.demands_j[s]),
                    cluster_id=self.cluster_set.cluster_of(int(s)),
                    release_time_s=self.sim.now,
                )
            )
            self.requested[s] = True
            self.metrics.note_request(int(s), self.sim.now)
            if self.trace.enabled:
                self.trace.emit(
                    self.sim.now,
                    EventKind.REQUEST_RELEASED,
                    int(s),
                    float(self.bank.demands_j[s]),
                )
        return bool(to_release)

    def _idle_views(self) -> List[RVView]:
        views = []
        for rv in self.rvs:
            if rv.busy or self._returning[rv.rv_id]:
                continue
            views.append(
                RVView(
                    rv_id=rv.rv_id,
                    position=rv.position,
                    budget_j=rv.battery.level_j,
                    em_j_per_m=rv.moving_cost_j_per_m,
                    charge_efficiency=self.cfg.charge_model.efficiency,
                    depot=rv.depot,
                )
            )
        return views

    def _dispatch(self) -> None:
        """Hand pending requests to idle RVs via the scheduler."""
        if len(self.requests) == 0:
            return
        views = self._idle_views()
        if not views:
            return
        observe = getattr(self.scheduler, "observe_time", None)
        if observe is not None:
            observe(self.sim.now)
        plans = self.scheduler.assign(self.requests, views, self.rng)
        for rv_id, plan in plans.items():
            rv = self.rvs[rv_id]
            rv.begin_sortie(list(plan.node_ids))
            if self.trace.enabled:
                self.trace.emit(
                    self.sim.now, EventKind.SORTIE_ASSIGNED, rv_id, float(len(plan))
                )
            self._rv_next_leg(rv)
        # Idle RVs that got nothing while work exists go home to refill
        # (an empty budget is the usual reason the scheduler skipped them).
        if len(self.requests) > 0:
            for view in self._idle_views():
                rv = self.rvs[view.rv_id]
                if rv.battery.level_j < rv.capacity_j - 1e-9 and not rv.at_depot:
                    self._send_home(rv)

    def _send_home(self, rv: RechargingVehicle) -> None:
        self._returning[rv.rv_id] = True
        tt = rv.travel_time_to(rv.depot)
        self.sim.schedule_in(tt, lambda rv=rv: self._rv_home(rv), priority=_PRIO_RV)

    def _rv_home(self, rv: RechargingVehicle) -> None:
        self._advance_energy()
        rv.return_to_depot()
        if self.trace.enabled:
            self.trace.emit(self.sim.now, EventKind.RV_RETURNED_HOME, rv.rv_id)
        if self.cfg.rv_depot_dwell_s > 0:
            # The RV stays docked (still "returning") while its own
            # battery refills at the base station.
            self.sim.schedule_in(
                self.cfg.rv_depot_dwell_s,
                lambda rv=rv: self._rv_ready(rv),
                priority=_PRIO_RV,
            )
        else:
            self._rv_ready(rv)

    def _rv_ready(self, rv: RechargingVehicle) -> None:
        self._returning[rv.rv_id] = False
        if self.cfg.dispatch_on_idle:
            self._check_requests()
            self._dispatch()
        self._record_metrics()

    # ------------------------------------------------------------------
    # RV sortie execution
    # ------------------------------------------------------------------

    def _rv_next_leg(self, rv: RechargingVehicle) -> None:
        if not rv.itinerary:
            rv.end_sortie()
            if self.cfg.dispatch_on_idle:
                self._check_requests()
                self._dispatch()
            return
        node = rv.itinerary[0]
        tt = rv.travel_time_to(self.sensor_pos[node])
        self.sim.schedule_in(tt, lambda rv=rv: self._rv_arrive(rv), priority=_PRIO_RV)

    def _rv_arrive(self, rv: RechargingVehicle) -> None:
        self._advance_energy()
        node = rv.itinerary.pop(0)
        rv.move_to(self.sensor_pos[node])
        if self.trace.enabled:
            self.trace.emit(self.sim.now, EventKind.RV_ARRIVED, rv.rv_id, float(node))
        demand = float(self.bank.demands_j[node])
        charge_time = self.cfg.charge_model.charge_time_s(demand)
        self.sim.schedule_in(
            charge_time, lambda rv=rv, node=node: self._rv_finish_charge(rv, node), priority=_PRIO_RV
        )

    def _rv_finish_charge(self, rv: RechargingVehicle, node: int) -> None:
        self._advance_energy()
        was_depleted = bool(self.bank.levels_j[node] <= 0.0)
        delivered = self.bank.charge_to_full([node])
        if self.trace.enabled:
            self.trace.emit(self.sim.now, EventKind.NODE_RECHARGED, int(node), delivered)
            if was_depleted:
                self.trace.emit(self.sim.now, EventKind.SENSOR_REVIVED, int(node))
        rv.deliver(delivered, self.cfg.charge_model.efficiency)
        self.requested[node] = False
        self.requests.remove(node)  # in case it was still listed
        self.metrics.note_recharge(node, self.sim.now)
        # A refilled node may have been depleted: rates and coverage change.
        self._recompute_rates()
        self._record_metrics()
        self._rv_next_leg(rv)

    # ------------------------------------------------------------------
    # periodic events
    # ------------------------------------------------------------------

    def _on_tick(self) -> None:
        self._advance_energy()
        if self.cfg.activation == "round_robin":
            handoffs = self.activator.rotate(self.bank.alive_mask())
            if len(handoffs) and self.trace.enabled:
                self.trace.emit(self.sim.now, EventKind.ROTATION, -1, float(len(handoffs)))
            if len(handoffs):
                # Notification TX for the retiring node, RX for the successor.
                rx_j = self.power.radio.rx_energy_j(self.power.payload_bytes)
                self.bank.drain_energy(handoffs[:, 0], self._notification_j)
                self.bank.drain_energy(handoffs[:, 1], rx_j)
                self._energy_breakdown_j["notifications"] += len(handoffs) * (
                    self._notification_j + rx_j
                )
            self._recompute_rates()
        adjust = getattr(self.erc, "maybe_adjust", None)
        if adjust is not None:
            adjust(self.sim.now)
        self._check_requests()
        self._record_metrics()
        self.sim.schedule_in(self.cfg.tick_s, self._on_tick, priority=_PRIO_TICK)

    def _on_dispatch_round(self) -> None:
        """Periodic base-station scheduling round over the backlog."""
        self._advance_energy()
        self._check_requests()
        self._dispatch()
        self._record_metrics()
        self.sim.schedule_in(
            self.cfg.dispatch_period_s, self._on_dispatch_round, priority=_PRIO_DISPATCH
        )

    def _on_relocate(self) -> None:
        self._advance_energy()
        self.targets.relocate()
        if self.trace.enabled:
            self.trace.emit(self.sim.now, EventKind.TARGETS_RELOCATED, self.targets.epoch)
        self._rebuild_clusters()
        self._recompute_rates()
        self._check_requests()
        self._record_metrics()
        self.sim.schedule_in(
            self.cfg.target_period_s, self._on_relocate, priority=_PRIO_RELOCATE
        )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self) -> SimulationSummary:
        """Run to the configured horizon and return the summary."""
        self.sim.run_until(self.cfg.sim_time_s)
        self._advance_energy()
        dist = sum(rv.stats.distance_m for rv in self.rvs)
        menergy = sum(rv.stats.moving_energy_j for rv in self.rvs)
        delivered = sum(rv.stats.delivered_energy_j for rv in self.rvs)
        sorties = sum(rv.stats.sorties for rv in self.rvs)
        return self.metrics.finalize(
            t_end=self.cfg.sim_time_s,
            rv_distance_m=dist,
            rv_moving_energy_j=menergy,
            delivered_energy_j=delivered,
            n_sorties=sorties,
            events_fired=self.sim.events_fired,
        )

    # ------------------------------------------------------------------
    # introspection helpers (used by examples and tests)
    # ------------------------------------------------------------------

    def energy_breakdown(self) -> Dict[str, float]:
        """Cumulative network consumption by category (Joules).

        Categories: ``idle`` (sleeping detectors + radios), ``sensing``
        (active monitoring incl. own report TX), ``relay`` (forwarding
        others' packets, ETX-weighted when that metric is on),
        ``leakage`` (Ni-MH self-discharge, when enabled) and
        ``notifications`` (round-robin hand-off packets).  The upper
        bound is loose where sensors clamp at empty — a depleted node's
        nominal draw is not actually withdrawn.
        """
        return dict(self._energy_breakdown_j)

    def snapshot(self) -> Dict[str, np.ndarray]:
        """A read-only view of the current world state."""
        alive = self.bank.alive_mask()
        return {
            "time_s": np.array(self.sim.now),
            "sensor_positions": self.sensor_pos.copy(),
            "battery_levels_j": self.bank.levels_j.copy(),
            "alive": alive,
            "active": self.activator.active_mask(alive),
            "target_positions": self.targets.positions.copy(),
            "cluster_membership": self.cluster_set.membership.copy(),
            "rv_positions": np.vstack([rv.position for rv in self.rvs])
            if self.rvs
            else np.empty((0, 2)),
            "pending_requests": self.requests.node_ids,
        }
