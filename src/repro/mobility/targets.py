"""The target process.

Section II-A: ``M`` targets appear at uniformly random locations, stay
for a *target period* (Table II: 3 hours), then reappear elsewhere.  All
targets relocate on the shared period — which is what makes periodic
re-clustering an event the simulator can schedule.
"""

from __future__ import annotations

import numpy as np

from ..geometry.field import Field

__all__ = ["TargetProcess"]


class TargetProcess:
    """``m`` randomly relocating point targets on a field.

    Args:
        field: the sensing field to place targets on.
        m: number of targets.
        period_s: dwell time before every relocation (seconds).
        rng: random generator driving placements.
    """

    def __init__(self, field: Field, m: int, period_s: float, rng: np.random.Generator) -> None:
        if m < 0:
            raise ValueError("m must be non-negative")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.field = field
        self.m = m
        self.period_s = float(period_s)
        self._rng = rng
        self.positions = field.random_points(m, rng)
        self.epoch = 0  # how many relocations have happened

    def relocate(self) -> np.ndarray:
        """Move every target to a fresh uniform location.

        Returns the new ``(m, 2)`` positions (also stored on
        :attr:`positions`).
        """
        self.positions = self.field.random_points(self.m, self._rng)
        self.epoch += 1
        return self.positions

    def next_relocation_after(self, now_s: float) -> float:
        """Absolute time of the first relocation strictly after ``now_s``."""
        k = int(np.floor(now_s / self.period_s)) + 1
        return k * self.period_s
