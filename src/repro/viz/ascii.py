"""Terminal visualizations: field maps and line charts in plain text.

The library is headless (no matplotlib dependency), so inspection
happens either in the terminal (this module) or via SVG export
(:mod:`repro.viz.svg`).  Both consume the same inputs: a world
snapshot (:meth:`repro.sim.world.World.snapshot`) or trace series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["render_field", "render_series", "render_histogram"]

# Glyph precedence: later entries overwrite earlier ones in the grid.
_GLYPHS = {
    "sensor": ".",
    "clustered": "o",
    "active": "*",
    "dead": "x",
    "target": "T",
    "rv": "R",
    "base": "B",
}


def render_field(
    snapshot: Dict[str, np.ndarray],
    side_length: float,
    width: int = 60,
    height: int = 30,
    legend: bool = True,
) -> str:
    """An ASCII map of the field from a world snapshot.

    Glyphs: ``.`` idle sensor, ``o`` clustered sensor, ``*`` actively
    monitoring, ``x`` depleted, ``T`` target, ``R`` recharging vehicle,
    ``B`` base station (center).

    Args:
        snapshot: as returned by :meth:`World.snapshot`.
        side_length: field side in meters (for scaling).
        width: grid columns.
        height: grid rows.
        legend: append a legend line.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    grid = [[" "] * width for _ in range(height)]

    def place(pts: np.ndarray, glyph: str) -> None:
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        for x, y in pts:
            col = min(int(x / side_length * width), width - 1)
            row = min(int(y / side_length * height), height - 1)
            grid[height - 1 - row][col] = glyph  # y grows upward

    sensors = snapshot["sensor_positions"]
    alive = snapshot["alive"]
    active = snapshot["active"]
    membership = snapshot["cluster_membership"]
    clustered = membership >= 0

    place(sensors, _GLYPHS["sensor"])
    place(sensors[clustered & alive], _GLYPHS["clustered"])
    place(sensors[active], _GLYPHS["active"])
    place(sensors[~alive], _GLYPHS["dead"])
    place(snapshot["target_positions"], _GLYPHS["target"])
    place(snapshot["rv_positions"], _GLYPHS["rv"])
    place(np.array([[side_length / 2, side_length / 2]]), _GLYPHS["base"])

    border = "+" + "-" * width + "+"
    lines = [border] + ["|" + "".join(row) + "|" for row in grid] + [border]
    if legend:
        lines.append(
            ". sensor  o clustered  * monitoring  x depleted  T target  R vehicle  B base"
        )
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """A horizontal ASCII histogram (e.g. request-latency distributions).

    Args:
        values: the sample.
        bins: number of equal-width bins.
        width: bar width of the fullest bin.
        title: optional heading.
        unit: label appended to bin edges.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values to histogram")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    if title:
        lines.append(title)
    for k in range(bins):
        bar = "#" * int(round(counts[k] / peak * width))
        lines.append(
            f"{edges[k]:10.3g} - {edges[k + 1]:<10.3g}{unit} |{bar} {counts[k]}"
        )
    lines.append(f"n = {arr.size}, mean = {arr.mean():.3g}{unit}, max = {arr.max():.3g}{unit}")
    return "\n".join(lines)


def render_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 70,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """A multi-series ASCII line chart.

    Args:
        series: name -> (x values, y values); series are drawn with
            successive glyphs ``* + o x # @``.
        width: plot columns.
        height: plot rows.
        title: optional heading.
        y_label: unit note appended to the axis readout.
    """
    if not series:
        raise ValueError("no series to plot")
    glyphs = "*+ox#@"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (xs, ys)) in enumerate(series.items()):
        g = glyphs[k % len(glyphs)]
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        for x, y in zip(xs, ys):
            col = min(int((x - x_lo) / (x_hi - x_lo) * (width - 1)), width - 1)
            row = min(int((y - y_lo) / (y_hi - y_lo) * (height - 1)), height - 1)
            grid[height - 1 - row][col] = g

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" if False else f"{y_hi:10.4g} |")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.4g} +" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<12.4g}{'':^{max(width - 24, 0)}}{x_hi:>12.4g}")
    legend = "   ".join(
        f"{glyphs[k % len(glyphs)]} {name}" for k, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)
