"""Wall-clock benchmark for the warm-pool sweep service layers.

Three executions of the same 8-cell ERP grid, each run twice:

* **cold** — a fresh ``multiprocessing.Pool`` per sweep (the pre-warm
  executor behavior): every sweep pays worker spawn plus the
  numpy/scipy/simulator import bill;
* **warm** — the persistent :class:`repro.experiments.pool.WarmPool`:
  the second sweep reuses live workers and pays neither;
* **warm + store** — the warm pool plus a content-addressed
  :class:`repro.experiments.store.ResultStore`: the second sweep is
  parent-side store hits and runs no simulation at all.

``REPRO_START_METHOD=spawn`` is forced for every pooled leg so the
per-worker import bill is real on any host (under ``fork`` the cold
path inherits the parent's imports nearly free, which would understate
what a long-lived service actually saves — and CI runs the spawn path
anyway).  Every leg must serialize byte-identically to the serial
executor; the recorded ``speedup_warm`` (cold second sweep vs warm
second sweep) must beat 1x and ``speedup_service`` (cold second sweep
vs warm+store second sweep) must beat 2x — store hits skip simulation
entirely, so this holds even on a 1-CPU runner.
"""

import json
import os
import shutil
import tempfile
import time

from repro.experiments import ExperimentScale
from repro.experiments.executor import map_cells
from repro.experiments.pool import shutdown_warm_pool
from repro.experiments.store import ResultStore
from repro.utils.tables import format_table

from _shared import emit

SCHEDULERS = ("greedy", "combined")
ERPS = (0.0, 0.6)
JOBS = 2
SCALE = ExperimentScale("service-bench", days=1.0, seeds=(1, 2))


def _dumps(cells):
    return json.dumps(
        {"|".join(map(str, k)): v.as_dict() for k, v in cells.items()},
        sort_keys=True,
    )


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def bench_sweep_service():
    # The disk cache would collapse every leg into replays, and ambient
    # warm/store opt-ins would blur the A/B; measure the real paths.
    saved = {
        var: os.environ.pop(var, None)
        for var in ("REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL")
    }
    os.environ["REPRO_START_METHOD"] = "spawn"
    store_root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        serial = map_cells(SCALE, SCHEDULERS, ERPS, jobs=1)
        golden = _dumps(serial)

        sweeps = {}
        shutdown_warm_pool()
        for leg, kwargs in (
            ("cold", {"warm": False}),
            ("warm", {"warm": True}),
            ("store", {"warm": True, "store": ResultStore(store_root)}),
        ):
            for attempt in ("first", "second"):
                t, cells = _timed(
                    lambda kw=kwargs: map_cells(
                        SCALE, SCHEDULERS, ERPS, jobs=JOBS, **kw
                    )
                )
                sweeps[f"{leg}_{attempt}"] = t
                assert _dumps(cells) == golden, f"{leg} {attempt} sweep drifted"
            shutdown_warm_pool()
    finally:
        shutdown_warm_pool()
        shutil.rmtree(store_root, ignore_errors=True)
        os.environ.pop("REPRO_START_METHOD", None)
        for var, value in saved.items():
            if value is not None:
                os.environ[var] = value

    speedup_warm = sweeps["cold_second"] / max(sweeps["warm_second"], 1e-9)
    speedup_service = sweeps["cold_second"] / max(sweeps["store_second"], 1e-9)
    n_cells = len(SCHEDULERS) * len(ERPS) * len(SCALE.seeds)
    cpus = os.cpu_count() or 1
    table = format_table(
        ["leg", "first sweep s", "second sweep s"],
        [
            ["cold pool per call", round(sweeps["cold_first"], 3),
             round(sweeps["cold_second"], 3)],
            ["warm pool", round(sweeps["warm_first"], 3),
             round(sweeps["warm_second"], 3)],
            ["warm pool + store", round(sweeps["store_first"], 3),
             round(sweeps["store_second"], 3)],
            ["speedup (warm vs cold)", "", round(speedup_warm, 2)],
            ["speedup (store vs cold)", "", round(speedup_service, 2)],
        ],
        title=(
            f"Sweep service wall clock ({n_cells} cells, jobs={JOBS}, "
            f"spawn start, {cpus} CPUs)"
        ),
    )
    emit(
        "sweep_service",
        table,
        extra={
            "t_cold_first": sweeps["cold_first"],
            "t_cold_second": sweeps["cold_second"],
            "t_warm_first": sweeps["warm_first"],
            "t_warm_second": sweeps["warm_second"],
            "t_store_first": sweeps["store_first"],
            "t_store_second": sweeps["store_second"],
            "speedup_warm": speedup_warm,
            "speedup_service": speedup_service,
            "jobs": JOBS,
            "cells": n_cells,
            "cpu_count": cpus,
            "identical": True,
        },
    )
    # A live pool must beat re-spawning workers, and store hits must
    # beat everything: these hold on a single-CPU runner because the
    # savings are spawn/import time and skipped simulations, not
    # parallel headroom.
    assert speedup_warm > 1.0, f"warm pool slower than cold ({speedup_warm:.2f}x)"
    assert speedup_service >= 2.0, (
        f"store-backed sweep only {speedup_service:.2f}x over cold"
    )
