"""The typed state shared by the simulation subsystems.

:class:`SimulationState` owns everything that is *data* — positions,
batteries, network structure, targets, clusters, metrics, the event
engine and the RNG — while the behaviour lives in the four components
(:class:`~repro.sim.components.energy.EnergyAccounting`,
:class:`~repro.sim.components.clusters.ClusterManager`,
:class:`~repro.sim.components.gate.RequestGate`,
:class:`~repro.sim.components.fleet.FleetController`).  Components hold
a reference to the one shared state and communicate in time through the
event engine (``state.sim``), never by calling into each other's
internals.

:meth:`SimulationState.from_config` is the deterministic constructor:
the RNG draw order (sensor deployment, initial charge levels, target
placement) is part of the reproducibility contract — goldens pin it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...core.clustering import ClusterSet
from ...core.requests import RechargeNodeList
from ...energy.battery import BatteryBank
from ...energy.consumption import NodePowerModel
from ...geometry.field import Field
from ...core import kernels
from ...network.linkquality import apply_etx_metric
from ...network.routing import RoutingTree
from ...network.topology import Topology
from ...obs.blackbox import NULL_BLACKBOX
from ...obs.instruments import NULL_INSTRUMENTS
from ...obs.monitors import NULL_MONITORS
from ...obs.spans import NULL_TRACER
from ...registry import MOBILITY_MODELS
from ..config import SimulationConfig
from ..engine import Simulator
from ..metrics import MetricsCollector
from ..soa import StateArrays, debug_soa, soa_enabled
from ..trace import NullRecorder

__all__ = [
    "PRIO_DISPATCH",
    "PRIO_RELOCATE",
    "PRIO_RV",
    "PRIO_TICK",
    "SimulationState",
]

# Event priorities: energy/structure updates before scheduling.
PRIO_RELOCATE = 0
PRIO_TICK = 1
PRIO_DISPATCH = 2
PRIO_RV = 3


@dataclass
class SimulationState:
    """Everything the subsystems read and write, in one typed bundle."""

    cfg: SimulationConfig
    rng: np.random.Generator
    sim: Simulator
    trace: object
    field: Field
    power: NodePowerModel
    # -- sensors ----------------------------------------------------
    sensor_pos: np.ndarray
    bank: BatteryBank
    # -- static network ---------------------------------------------
    topology: Topology
    routing: RoutingTree
    uplink_etx: np.ndarray
    traffic_order: np.ndarray
    # -- targets & clusters (maintained by ClusterManager) ----------
    targets: object
    cluster_set: Optional[ClusterSet] = None
    activator: Optional[object] = None
    coverable: Optional[np.ndarray] = None
    # -- accounting --------------------------------------------------
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    # -- request backlog (maintained by RequestGate) -----------------
    requests: RechargeNodeList = field(default_factory=RechargeNodeList)
    requested: np.ndarray = None  # type: ignore[assignment]
    # -- observability (NULL_* defaults = zero-overhead no-ops) ------
    instruments: object = NULL_INSTRUMENTS
    spans: object = NULL_TRACER
    monitors: object = NULL_MONITORS
    blackbox: object = NULL_BLACKBOX
    # -- SoA tick engine (None = object-walking reference path) ------
    arrays: Optional[StateArrays] = None

    def __post_init__(self) -> None:
        if self.requested is None:
            self.requested = np.zeros(self.cfg.n_sensors, dtype=bool)
        if self.instruments is None:
            self.instruments = NULL_INSTRUMENTS
        if self.spans is None:
            self.spans = NULL_TRACER
        if self.monitors is None:
            self.monitors = NULL_MONITORS
        if self.blackbox is None:
            self.blackbox = NULL_BLACKBOX
        if self.arrays is not None:
            # Per-sensor views alias the canonical buffers: the arrays
            # *are* the state, not a copy of it.
            self.arrays.positions = self.sensor_pos
            self.arrays.levels_j = self.bank.levels_j
            self.arrays.requested = self.requested

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.sim.now

    @classmethod
    def from_config(
        cls,
        config: SimulationConfig,
        trace=None,
        instruments=None,
        spans=None,
        monitors=None,
        blackbox=None,
    ) -> "SimulationState":
        """Deploy sensors, build the static network and the targets.

        The RNG consumption order here (deployment, charge levels,
        target placement) must never change: fixed-seed golden outputs
        depend on it.
        """
        rng = np.random.default_rng(config.seed)
        sim = Simulator()
        fld = Field(config.side_length_m)

        sensor_pos = fld.deploy_uniform(config.n_sensors, rng)
        bank = BatteryBank(
            config.n_sensors,
            capacity_j=config.battery_capacity_j,
            threshold_fraction=config.threshold_fraction,
        )
        lo, hi = config.initial_charge_range
        bank.levels_j = (
            rng.uniform(lo, hi, size=config.n_sensors) * config.battery_capacity_j
        )

        topology = Topology(
            sensor_pos, config.comm_range_m, base_station=fld.base_station
        )
        n = config.n_sensors
        if config.routing_metric == "etx":
            etx_topology, _ = apply_etx_metric(topology)
            routing = RoutingTree(etx_topology)
            # Expected transmissions on each sensor's uplink: packets
            # relayed over a grey-zone link cost ETX times the energy.
            uplink_etx = kernels.uplink_etx_vector(
                topology.points, routing.parent, n, config.comm_range_m
            )
        else:
            routing = RoutingTree(topology)
            uplink_etx = np.ones(n, dtype=np.float64)
        # Farthest-first order for the linear relay-load pass, computed once.
        traffic_order = np.argsort(routing.dist, kind="stable")[::-1]

        targets = MOBILITY_MODELS.build(
            config.target_mobility, field=fld, config=config, rng=rng
        )

        # The SoA tick engine: flat aligned arrays + reusable scratch,
        # captured at construction (the REPRO_VECTORIZE knob pattern).
        # Debug mode also builds the arrays — the shadow compare needs
        # both engines live.
        arrays = None
        if soa_enabled() or debug_soa():
            arrays = StateArrays(
                config.n_sensors, config.n_rvs, instruments=instruments
            )

        return cls(
            cfg=config,
            rng=rng,
            sim=sim,
            trace=trace if trace is not None else NullRecorder(),
            field=fld,
            power=config.power_model,
            sensor_pos=sensor_pos,
            bank=bank,
            topology=topology,
            routing=routing,
            uplink_etx=uplink_etx,
            traffic_order=traffic_order,
            targets=targets,
            instruments=instruments if instruments is not None else NULL_INSTRUMENTS,
            spans=spans if spans is not None else NULL_TRACER,
            monitors=monitors if monitors is not None else NULL_MONITORS,
            blackbox=blackbox if blackbox is not None else NULL_BLACKBOX,
            arrays=arrays,
        )
