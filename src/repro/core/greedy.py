"""The greedy baseline (Algorithm 2).

Each step, each RV with enough energy drives to the single listed node
with the maximum recharge profit ``d_i - em * dist(rv, i)`` and
recharges *only that node*.  No look-ahead, no cluster batching — the
paper introduces it precisely to expose how much traveling energy a
profit-myopic policy wastes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..geometry.points import distance
from .profit import node_profits
from .requests import RechargeNodeList, RechargeRequest
from .scheduling import PlannedRoute, RVView

__all__ = ["GreedyScheduler", "greedy_destination"]


def greedy_destination(
    demands: np.ndarray,
    positions: np.ndarray,
    rv_position: np.ndarray,
    em_j_per_m: float,
) -> Optional[int]:
    """Index of the max-profit node (Algorithm 2, line 8).

    Ties resolve to the lowest index.  Returns ``None`` for an empty
    instance.  The paper's greedy picks the best node even at negative
    profit — starving nodes must still be served.
    """
    if len(demands) == 0:
        return None
    profits = node_profits(demands, positions, rv_position, em_j_per_m)
    return int(np.argmax(profits))


class _GreedyState:
    """One RV's virtual state while Algorithm 2's loop runs."""

    __slots__ = ("rv", "position", "budget", "picked", "flag")

    def __init__(self, rv: RVView) -> None:
        self.rv = rv
        self.position = rv.position
        self.budget = rv.budget_j
        self.picked: List[RechargeRequest] = []
        self.flag = True  # "this RV has enough energy" (Alg. 2 line 1)


class GreedyScheduler:
    """Online Algorithm 2.

    Per scheduling round the paper's loop runs to exhaustion: while the
    list is non-empty and some RV still has energy, each RV in turn
    takes the max-profit node *from its current (virtual) position*,
    updates its position and energy books, and continues.  The chains
    so produced are each RV's itinerary for the round.  No route
    planning, no cluster batching — exactly the baseline's myopia.
    """

    name = "greedy"

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        states = [_GreedyState(rv) for rv in idle_rvs]
        while len(requests) > 0 and any(s.flag for s in states):
            for st in states:
                snapshot = requests.snapshot()
                if not snapshot:
                    break
                if not st.flag:
                    continue
                positions = np.vstack([r.position for r in snapshot])
                demands = np.array([r.demand_j for r in snapshot])
                idx = greedy_destination(demands, positions, st.position, st.rv.em_j_per_m)
                chosen = snapshot[idx]
                travel = distance(st.position, chosen.position)
                cost = travel * st.rv.em_j_per_m + st.rv.delivery_cost(chosen.demand_j)
                if cost > st.budget + 1e-9:
                    st.flag = False  # recharge threshold of h_i violated
                    continue
                st.picked.append(chosen)
                st.budget -= cost
                st.position = chosen.position
                requests.remove(chosen.node_id)
        plans: Dict[int, PlannedRoute] = {}
        for st in states:
            if not st.picked:
                continue
            waypoints = np.vstack([st.rv.position] + [r.position for r in st.picked])
            seg = np.diff(waypoints, axis=0)
            travel = float(np.hypot(seg[:, 0], seg[:, 1]).sum())
            demand = float(sum(r.demand_j for r in st.picked))
            plans[st.rv.rv_id] = PlannedRoute(
                node_ids=tuple(r.node_id for r in st.picked),
                waypoints=waypoints,
                travel_m=travel,
                demand_j=demand,
                profit_j=demand - st.rv.em_j_per_m * travel,
            )
        return plans
