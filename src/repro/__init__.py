"""repro — Joint Wireless Charging and Sensor Activity Management in WRSNs.

A production-quality reproduction of Gao, Wang & Yang (ICPP 2015):
balanced clustering, round-robin sensor activation, Energy Request
Control, and the greedy / insertion / Partition / Combined recharge
schedulers, on top of a full WRSN simulation substrate (geometry,
energy, multi-hop routing, mobile targets, recharging vehicles, and a
deterministic discrete-event engine).

Quickstart::

    from repro import SimulationConfig, run_simulation

    cfg = SimulationConfig.small(scheduler="partition", erp=0.6)
    summary = run_simulation(cfg)
    print(summary.traveling_energy_mj, summary.avg_coverage_ratio)
"""

from .core import (
    CombinedScheduler,
    EnergyRequestController,
    FullTimeActivator,
    GreedyScheduler,
    InsertionScheduler,
    PartitionScheduler,
    RechargeInstance,
    RechargeNodeList,
    RechargeRequest,
    RoundRobinActivator,
    balanced_clustering,
    nearest_target_clustering,
    solve_exact_single_rv,
    verify_routes,
)
from .geometry import Field, minimum_sensors_eq1
from .obs import Instruments, NullInstruments, RunManifest
from .registry import (
    ACTIVATORS,
    CLUSTERINGS,
    ERC_POLICIES,
    EXPORTERS,
    MOBILITY_MODELS,
    SCHEDULERS,
    ComponentSpec,
    Registry,
)
from .sim import (
    DAY_S,
    HOUR_S,
    SimulationConfig,
    SimulationSummary,
    World,
    make_scheduler,
    run_seeds,
    run_simulation,
    run_with_telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "ACTIVATORS",
    "CLUSTERINGS",
    "ComponentSpec",
    "CombinedScheduler",
    "DAY_S",
    "ERC_POLICIES",
    "EXPORTERS",
    "MOBILITY_MODELS",
    "Registry",
    "SCHEDULERS",
    "EnergyRequestController",
    "Field",
    "FullTimeActivator",
    "GreedyScheduler",
    "HOUR_S",
    "InsertionScheduler",
    "Instruments",
    "NullInstruments",
    "RunManifest",
    "PartitionScheduler",
    "RechargeInstance",
    "RechargeNodeList",
    "RechargeRequest",
    "RoundRobinActivator",
    "SimulationConfig",
    "SimulationSummary",
    "World",
    "balanced_clustering",
    "make_scheduler",
    "minimum_sensors_eq1",
    "nearest_target_clustering",
    "run_seeds",
    "run_simulation",
    "run_with_telemetry",
    "solve_exact_single_rv",
    "verify_routes",
    "__version__",
]
