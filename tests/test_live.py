"""The live fleet telemetry plane (repro.obs.live + service wiring).

Covers the MetricsBus (deterministic worker-delta aggregation), the
LiveServer HTTP endpoints (/metrics, /healthz, /statusz), SLO rule
parsing and evaluation, the declared stats schemas that keep wire keys
from drifting, exporter edge cases under concurrency and hostile
names, and the ``repro top`` renderer.  The load-bearing invariants:
the plane is byte-invisible to simulation results, worker reply order
never changes the aggregate, and a respawned worker flips /healthz
from degraded back to ok.
"""

import json
import os
import re
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.pool import WarmPool, get_warm_pool, shutdown_warm_pool
from repro.experiments.service import SweepService
from repro.experiments.store import ResultStore
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    POOL_STATS,
    SERVICE_DESCRIBE_KEYS,
    STORE_STATS,
    Instruments,
    InvariantViolation,
    MonitorSet,
    StatField,
    StatsSchema,
)
from repro.obs.live import (
    LiveServer,
    MetricsBus,
    SloEvaluator,
    live_interval_from_env,
    live_port_from_env,
    parse_slo_rules,
)
from repro.obs.spans import SpanTracer
from repro.obs.top import format_frame, run_top

TINY = ExperimentScale("tiny", days=0.05, seeds=(1, 2))

_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in (
        "REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL", "REPRO_SHM",
        "REPRO_START_METHOD", "REPRO_LIVE", "REPRO_LIVE_INTERVAL_S",
        "REPRO_SLO", "REPRO_STRICT_MONITORS",
    ):
        monkeypatch.delenv(var, raising=False)
    yield
    shutdown_warm_pool()


def _tiny_configs():
    cfg = TINY.base_config(scheduler="greedy", erp=0.2)
    return [cfg.with_overrides(seed=s) for s in TINY.seeds]


def _get(url, timeout_s=5.0):
    with urllib.request.urlopen(url, timeout=timeout_s) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


def _lint_exposition(text):
    """Assert the exposition parses; returns the set of sample keys."""
    seen = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = _PROM_SAMPLE_RE.match(line)
        assert m, f"unparseable sample line {line!r}"
        key = (m.group("name"), m.group("labels"))
        assert key not in seen, f"duplicate sample {key}"
        seen.add(key)
        float(m.group("value"))
    return seen


# -- env knobs --------------------------------------------------------


class TestKnobs:
    def test_live_port_off_by_default(self, monkeypatch):
        assert live_port_from_env() is None
        monkeypatch.setenv("REPRO_LIVE", "0")
        assert live_port_from_env() is None

    def test_live_port_one_means_ephemeral(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "1")
        assert live_port_from_env() == 0
        monkeypatch.setenv("REPRO_LIVE", "9100")
        assert live_port_from_env() == 9100

    def test_live_port_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "yes")
        with pytest.raises(ValueError):
            live_port_from_env()

    def test_interval_default_and_floor(self, monkeypatch):
        assert live_interval_from_env() == 1.0
        monkeypatch.setenv("REPRO_LIVE_INTERVAL_S", "0.001")
        assert live_interval_from_env() == 0.05


# -- stats schemas ----------------------------------------------------


class TestStatsSchema:
    def test_pool_stats_match_declared_schema(self):
        with WarmPool(jobs=1) as pool:
            POOL_STATS.validate(pool.stats)
            assert set(pool.stats) == {f.key for f in POOL_STATS.fields}

    def test_store_stats_match_declared_schema(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        STORE_STATS.validate(store.stats)
        assert set(store.stats) == {f.key for f in STORE_STATS.fields}

    def test_service_describe_carries_declared_keys(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=1, warm=False,
            store_dir=tmp_path / "store",
        )
        described = service.describe()
        for key in SERVICE_DESCRIBE_KEYS:
            assert key in described, key

    def test_validate_names_the_drift(self):
        schema = StatsSchema("s", "s", [StatField("a", "a"), StatField("b", "b")])
        with pytest.raises(ValueError, match="missing.*'b'"):
            schema.validate({"a": 0})
        with pytest.raises(ValueError, match="extra.*'c'"):
            schema.validate({"a": 0, "b": 0, "c": 0})
        schema.validate(schema.new_stats())

    def test_counter_name_rejects_undeclared_keys(self):
        with pytest.raises(KeyError):
            POOL_STATS.counter_name("not_a_stat")
        assert POOL_STATS.counter_name("respawns") == "pool.respawns"

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StatsSchema("s", "s", [StatField("a", "x"), StatField("a", "y")])


# -- metrics bus ------------------------------------------------------


def _delta(tasks=1, task_s=0.1, rss=1000.0):
    obs = Instruments()
    obs.counter("worker.tasks").inc(tasks)
    obs.histogram("worker.task_s", DEFAULT_LATENCY_BUCKETS).observe(task_s)
    obs.gauge("worker.maxrss_kb").set(rss)
    return obs.snapshot()


class TestMetricsBus:
    def test_absorb_is_order_independent(self):
        deltas = [(_delta(1, 0.01, 100.0), 0), (_delta(2, 0.5, 200.0), 1),
                  (_delta(3, 2.0, 300.0), 0)]
        forward, backward = MetricsBus(), MetricsBus()
        for d, wid in deltas:
            forward.absorb(d, wid)
        for d, wid in reversed(deltas):
            backward.absorb(d, wid)
        assert forward.snapshot() == backward.snapshot()
        # Additive fields are order-independent; gauges are
        # point-in-time readings, so only the last write is contractual.
        f_rows, b_rows = forward.worker_rows(), backward.worker_rows()
        assert {w: r["counters"] for w, r in f_rows.items()} == \
            {w: r["counters"] for w, r in b_rows.items()}
        assert {w: r["deltas"] for w, r in f_rows.items()} == \
            {w: r["deltas"] for w, r in b_rows.items()}

    def test_counters_and_histograms_fold_additively(self):
        bus = MetricsBus()
        bus.absorb(_delta(2, 0.1), 0)
        bus.absorb(_delta(3, 0.2), 1)
        snap = bus.snapshot()
        assert snap["counters"]["worker.tasks"] == 5
        assert snap["histograms"]["worker.task_s"]["count"] == 2
        assert snap["histograms"]["worker.task_s"]["total"] == pytest.approx(0.3)

    def test_gauges_stay_per_worker_never_summed(self):
        bus = MetricsBus()
        bus.absorb(_delta(rss=100.0), 0)
        bus.absorb(_delta(rss=300.0), 1)
        assert "worker.maxrss_kb" not in bus.snapshot()["gauges"]
        rows = bus.worker_rows()
        assert rows[0]["gauges"]["worker.maxrss_kb"] == 100.0
        assert rows[1]["gauges"]["worker.maxrss_kb"] == 300.0

    def test_none_and_empty_deltas_are_noops(self):
        bus = MetricsBus()
        bus.absorb(None, 0)
        bus.absorb({}, 0)
        assert bus.worker_rows() == {}

    def test_merged_histograms_answer_quantiles(self):
        bus = MetricsBus()
        for task_s in (0.01, 0.02, 0.03, 5.0):
            bus.absorb(_delta(task_s=task_s), 0)
        h = bus.instruments.histogram("worker.task_s")
        assert h.quantile(0.5) <= 0.05
        assert h.quantile(0.99) >= 5.0
        assert bus.bucket_bounds()["worker.task_s"] == list(DEFAULT_LATENCY_BUCKETS)


# -- SLO rules --------------------------------------------------------


class TestSloRules:
    def test_parse_spec(self):
        rules = parse_slo_rules("pool.task_s:p99<=0.5; pool.respawns:rate<=0.1")
        assert [r.name for r in rules] == [
            "pool.task_s:p99<=0.5", "pool.respawns:rate<=0.1",
        ]
        assert rules[0].stat == "p99" and rules[0].threshold == 0.5

    def test_parse_empty_spec(self):
        assert parse_slo_rules("") == []
        assert parse_slo_rules(" ; ") == []

    @pytest.mark.parametrize("bad", [
        "pool.task_s:p99",          # no threshold
        "pool.task_s<=0.5",         # no stat
        "pool.task_s:p42<=0.5",     # unknown stat
        "pool.task_s:p99<=fast",    # non-numeric threshold
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_slo_rules(bad)

    def _evaluator(self, spec, strict=False):
        monitors = MonitorSet(
            instruments=Instruments(), spans=SpanTracer(), strict=strict
        )
        return SloEvaluator(parse_slo_rules(spec), monitors), monitors

    def test_evaluate_ok_and_violation(self):
        bus = MetricsBus()
        bus.absorb(_delta(task_s=0.2), 0)
        ev, monitors = self._evaluator(
            "worker.task_s:p99<=10; worker.task_s:max<=0.01"
        )
        results = ev.evaluate(bus)
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False
        assert ev.last_results == results
        counters = monitors.instruments.snapshot()["counters"]
        assert counters["monitors.violations"] == 1
        assert counters["monitors.slo.violations"] == 1

    def test_unrecorded_instrument_passes(self):
        ev, _ = self._evaluator("never.recorded:p99<=1")
        results = ev.evaluate(MetricsBus())
        assert results[0]["ok"] is True and results[0]["observed"] is None

    def test_strict_mode_raises(self):
        bus = MetricsBus()
        bus.absorb(_delta(task_s=3.0), 0)
        ev, _ = self._evaluator("worker.task_s:max<=0.1", strict=True)
        with pytest.raises(InvariantViolation, match="SLO"):
            ev.evaluate(bus)


# -- live HTTP server -------------------------------------------------


class TestLiveServer:
    def test_endpoints_serve_metrics_health_status(self):
        bus = MetricsBus()
        bus.absorb(_delta(tasks=4, task_s=0.25), 0)
        bus.instruments.counter("executor.cells").inc(8)
        with LiveServer(
            bus, port=0,
            status_fn=lambda: {"service": {"jobs": 2}},
            health_fn=lambda: {"status": "ok"},
        ) as live:
            status, ctype, text = _get(live.url + "/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            names = {name for name, _labels in _lint_exposition(text)}
            assert "repro_worker_tasks_total" in names
            assert "repro_worker_task_s_bucket" in names
            assert "repro_worker_task_s_count" in names

            status, ctype, text = _get(live.url + "/healthz")
            assert status == 200 and ctype.startswith("application/json")
            assert json.loads(text)["status"] == "ok"

            status, _ctype, text = _get(live.url + "/statusz")
            assert status == 200
            assert json.loads(text)["service"]["jobs"] == 2

    def test_unhealthy_serves_503_and_unknown_404(self):
        with LiveServer(
            MetricsBus(), port=0, health_fn=lambda: {"status": "unhealthy"}
        ) as live:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(live.url + "/healthz")
            assert err.value.code == 503
            assert json.loads(err.value.read())["status"] == "unhealthy"
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(live.url + "/nope")
            assert err.value.code == 404

    def test_scrape_of_empty_bus_is_valid_exposition(self):
        with LiveServer(MetricsBus(), port=0) as live:
            status, _ctype, text = _get(live.url + "/metrics")
            assert status == 200
            _lint_exposition(text)

    def test_unicode_and_colliding_names_sanitize_in_scrape(self):
        bus = MetricsBus()
        bus.instruments.counter("héllo.metric").inc(1)
        bus.instruments.counter("h_llo.metric").inc(2)
        with LiveServer(bus, port=0) as live:
            _status, _ctype, text = _get(live.url + "/metrics")
        names = {name for name, _labels in _lint_exposition(text)}
        assert "repro_h_llo_metric_total" in names
        assert "repro_h_llo_metric_total_dup2" in names

    def test_concurrent_scrape_while_writing(self):
        bus = MetricsBus()
        stop = threading.Event()
        errors = []

        def _writer():
            i = 0
            while not stop.is_set():
                try:
                    bus.absorb(_delta(task_s=0.01 * (i % 7 + 1)), i % 3)
                    bus.instruments.counter(f"churn.c{i % 50}").inc()
                    bus.instruments.histogram(
                        f"churn.h{i % 20}", DEFAULT_LATENCY_BUCKETS
                    ).observe(0.01)
                except Exception as exc:  # pragma: no cover - the test's point
                    errors.append(exc)
                    return
                i += 1

        writer = threading.Thread(target=_writer, daemon=True)
        with LiveServer(bus, port=0) as live:
            writer.start()
            try:
                for _ in range(25):
                    status, _ctype, text = _get(live.url + "/metrics")
                    assert status == 200
                    _lint_exposition(text)
            finally:
                stop.set()
                writer.join(timeout=5)
        assert not errors

    def test_sampler_thread_fires(self):
        ticks = []
        with LiveServer(
            MetricsBus(), port=0, sample_fn=lambda: ticks.append(1),
            interval_s=0.05,
        ):
            deadline = time.monotonic() + 5.0
            while not ticks and time.monotonic() < deadline:
                time.sleep(0.01)
        assert ticks

    def test_close_is_idempotent(self):
        live = LiveServer(MetricsBus(), port=0)
        url = live.url
        live.close()
        live.close()
        with pytest.raises((urllib.error.URLError, OSError)):
            _get(url + "/metrics", timeout_s=0.5)


# -- service integration ----------------------------------------------


class TestServiceLivePlane:
    def test_null_default_arms_nothing(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=1, warm=False,
            store_dir=tmp_path / "store",
        )
        assert service.bus is None and service.live is None
        assert service._slo_evaluator is None

    def test_armed_service_reports_health_transitions(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=2, warm=True,
            store_dir=tmp_path / "store", live_port=0,
        )
        try:
            pool = get_warm_pool(2)
            pool.ping()
            assert service._healthz()["status"] == "ok"

            victim = next(iter(pool._workers.values()))
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=5)
            degraded = service._healthz()
            assert degraded["status"] == "degraded"
            assert degraded["workers_alive"] == 1

            # The next run culls the corpse and refills every slot:
            # degraded flips back to ok without a restart.
            pool.run("run", _tiny_configs())
            assert service._healthz()["status"] == "ok"

            for worker in pool._workers.values():
                os.kill(worker.proc.pid, signal.SIGKILL)
                worker.proc.join(timeout=5)
            assert service._healthz()["status"] == "unhealthy"
        finally:
            service.close_live()

    def test_healthz_idle_without_pool(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=1, warm=False,
            store_dir=tmp_path / "store", live_port=0,
        )
        try:
            assert service._healthz()["status"] == "idle"
        finally:
            service.close_live()

    def test_statusz_shape_and_worker_rows(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=2, warm=True,
            store_dir=tmp_path / "store", live_port=0,
            slo="worker.task_s:p99<=60",
        )
        try:
            get_warm_pool(2).run("run", _tiny_configs(),
                                 instruments=service.instruments)
            service._slo_evaluator.evaluate(service.bus)
            status = json.loads(json.dumps(service._statusz()))  # JSON-safe
            for key in ("service", "current", "histograms", "gauges",
                        "health", "workers", "slo"):
                assert key in status, key
            assert status["current"] is None
            assert status["workers"], "worker deltas should have streamed"
            for row in status["workers"].values():
                assert row["counters"]["worker.tasks"] >= 1
            assert status["slo"][0]["ok"] is True
            assert status["histograms"]["pool.task_s"]["count"] == len(TINY.seeds)
        finally:
            service.close_live()

    def test_worker_streaming_results_byte_identical(self):
        configs = _tiny_configs()
        with WarmPool(jobs=2) as plain_pool:
            plain = plain_pool.run("run", configs)
        with WarmPool(jobs=2) as streaming_pool:
            streaming_pool.attach_bus(MetricsBus())
            streamed = streaming_pool.run("run", configs)
        assert json.dumps([s.as_dict() for s in streamed], sort_keys=True) == \
            json.dumps([s.as_dict() for s in plain], sort_keys=True)

    def test_scraped_totals_match_pool_stats(self, tmp_path):
        service = SweepService(
            tmp_path / "svc.sock", jobs=2, warm=True,
            store_dir=tmp_path / "store", live_port=0,
        )
        try:
            pool = get_warm_pool(2)
            pool.run("run", _tiny_configs(), instruments=service.instruments)
            _status, _ctype, text = _get(service.live.url + "/metrics")
            samples = {}
            for line in text.splitlines():
                m = _PROM_SAMPLE_RE.match(line)
                if m and not m.group("labels"):
                    samples[m.group("name")] = float(m.group("value"))
            assert samples["repro_pool_tasks_total"] == pool.stats["tasks"]
            assert samples["repro_worker_tasks_total"] == pool.stats["tasks"]
            assert samples["repro_pool_task_s_count"] == len(TINY.seeds)
        finally:
            service.close_live()


# -- repro top --------------------------------------------------------


class TestTop:
    def _status(self):
        return {
            "service": {
                "jobs": 2, "requests_served": 3,
                "counters": {"executor.cells": 8.0,
                             "executor.cache_misses": 8.0},
                "pool": {"workers_alive": 2, "tasks": 8, "warm_hits": 4,
                         "respawns": 1, "shm_bytes": 1024},
                "store": {"entries": 8, "bytes": 4096, "hits": 0,
                          "misses": 8, "puts": 8},
            },
            "current": {"op": "submit_grid", "cells": 8, "completed": 4,
                        "sources": {"run": 4}},
            "histograms": {"pool.task_s": {"count": 8, "mean": 0.1,
                                           "max": 0.3}},
            "workers": {"0": {"deltas": 5, "counters": {"worker.tasks": 5},
                              "gauges": {"worker.maxrss_kb": 90000}},
                        "1": {"deltas": 3, "counters": {"worker.tasks": 3},
                              "gauges": {"worker.maxrss_kb": 91000}}},
            "health": {"status": "ok"},
            "slo": [{"rule": "pool.task_s:p99<=1", "ok": True,
                     "observed": 0.25},
                    {"rule": "pool.respawns:rate<=0.1", "ok": False,
                     "observed": 0.5}],
        }

    def test_format_frame_renders_all_sections(self):
        text = "\n".join(format_frame(self._status()))
        assert "status=ok" in text and "jobs=2" in text
        assert "4/8 cells" in text and "####" in text
        assert "warm_hits=4" in text and "entries=8" in text
        assert re.search(r"^\s+0\s+5\.00\s+62\.5%", text, re.M)
        assert "pool.task_s" in text
        assert "[OK ] pool.task_s:p99<=1" in text
        assert "[VIOLATION] pool.respawns:rate<=0.1" in text

    def test_format_frame_handles_minimal_payload(self):
        lines = format_frame({})
        assert any("(idle)" in line for line in lines)

    def test_run_top_plain_against_live_server(self, capsys):
        bus = MetricsBus()
        bus.absorb(_delta(tasks=2), 0)
        with LiveServer(
            bus, port=0,
            status_fn=lambda: {"service": {"jobs": 1},
                               "workers": {"0": bus.worker_rows()[0]},
                               "health": {"status": "ok"}},
        ) as live:
            code = run_top(live.url, interval_s=0.01, frames=2, plain=True)
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "status=ok" in out

    def test_run_top_reports_dead_plane(self, capsys):
        code = run_top("http://127.0.0.1:9", interval_s=0.01, frames=1,
                       plain=True)
        assert code == 1
        assert "no live plane" in capsys.readouterr().out

    def test_cli_top_plain(self, capsys):
        from repro.cli import main

        with LiveServer(MetricsBus(), port=0,
                        status_fn=lambda: {"health": {"status": "ok"}}) as live:
            code = main(["top", "--url", live.url, "--frames", "1", "--plain"])
        assert code == 0
        assert "repro top —" in capsys.readouterr().out
