#!/usr/bin/env python
"""Render the reproduced figures as SVG charts.

Reads the JSON produced by ``scripts/run_experiments.py`` and draws one
SVG per paper figure (line charts for the ERP sweeps, a grouped summary
for Fig. 4) into ``results/<scale>/svg/``.

Usage:  python scripts/render_figures.py [results/paper/results.json]
"""

import json
import pathlib
import sys

from repro.viz.svg import series_svg, write_svg

SCHEMES = ("greedy", "partition", "combined")


def main(path: str = "results/paper/results.json") -> int:
    src = pathlib.Path(path)
    if not src.exists():
        print(f"no results at {src}; run scripts/run_experiments.py first", file=sys.stderr)
        return 1
    data = json.loads(src.read_text())
    out = src.parent / "svg"
    out.mkdir(exist_ok=True)
    erps = data["fig5"]["erp"]
    sweep = data["sweep"]

    def sweep_series(metric, transform=lambda v: v):
        return {s: (erps, [transform(v) for v in sweep[s][metric]]) for s in SCHEMES}

    charts = {
        "fig5_tradeoff.svg": series_svg(
            {
                "traveling energy (MJ)": (erps, data["fig5"]["traveling_energy_mj"]),
                "missing rate (%)": (erps, data["fig5"]["missing_rate_pct"]),
            },
            title="Fig. 5 - Energy efficiency vs coverage trade-off (greedy)",
            x_label="ERP value",
        ),
        "fig6a_traveling_energy.svg": series_svg(
            sweep_series("traveling_energy_j", lambda v: v / 1e6),
            title="Fig. 6(a) - Traveling energy of RVs",
            x_label="ERP value",
            y_label="MJ",
        ),
        "fig6b_coverage.svg": series_svg(
            sweep_series("avg_coverage_ratio", lambda v: 100 * v),
            title="Fig. 6(b) - Average coverage ratio",
            x_label="ERP value",
            y_label="%",
        ),
        "fig6c_nonfunctional.svg": series_svg(
            sweep_series("avg_nonfunctional_fraction", lambda v: 100 * v),
            title="Fig. 6(c) - Nonfunctional sensors",
            x_label="ERP value",
            y_label="%",
        ),
        "fig6d_recharging_cost.svg": series_svg(
            sweep_series("recharging_cost_m_per_sensor"),
            title="Fig. 6(d) - Recharging cost",
            x_label="ERP value",
            y_label="m/sensor",
        ),
        "fig7a_energy_recharged.svg": series_svg(
            sweep_series("delivered_energy_j", lambda v: v / 1e6),
            title="Fig. 7(a) - Energy recharged",
            x_label="ERP value",
            y_label="MJ",
        ),
        "fig7b_objective.svg": series_svg(
            sweep_series("objective_j", lambda v: v / 1e6),
            title="Fig. 7(b) - Objective score",
            x_label="ERP value",
            y_label="MJ",
        ),
    }
    # Fig. 4 as grouped bars approximated with one series per scheduler
    # over the four cases (x = case index).
    fig4 = data["fig4_mj"]
    cases = list(fig4.keys())
    xs = list(range(len(cases)))
    charts["fig4_activity.svg"] = series_svg(
        {s: (xs, [fig4[c][s] for c in cases]) for s in SCHEMES},
        title="Fig. 4 - Activity management vs RV traveling energy "
        "(0: NoERC-FT, 1: NoERC-RR, 2: ERC-FT, 3: ERC-RR)",
        x_label="case",
        y_label="MJ",
    )
    for name, svg in charts.items():
        write_svg(out / name, svg)
        print(f"wrote {out / name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
