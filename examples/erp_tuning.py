#!/usr/bin/env python
"""Tuning the Energy Request Percentage (ERP) for a deployment.

The paper's central trade-off (Fig. 5): a higher ERP batches recharge
requests per cluster, cutting RV travel — but postponing requests keeps
sensors low on energy and eventually costs target coverage.  This
example sweeps ERP on a small deployment and prints the trade-off table
so an operator can pick the knee.

Run:  python examples/erp_tuning.py
"""

from repro import SimulationConfig, run_simulation
from repro.sim import DAY_S, HOUR_S
from repro.utils.tables import format_table


def main() -> None:
    rows = []
    for erp in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        cfg = SimulationConfig.small(
            scheduler="combined",
            erp=erp,
            sim_time_s=3 * DAY_S,
            # Persistent clusters: request batching needs the cluster to
            # outlive a recharge cycle (see DESIGN.md).
            target_period_s=24 * HOUR_S,
            seed=9,
        )
        s = run_simulation(cfg)
        rows.append(
            [
                erp,
                s.traveling_energy_j / 1000.0,
                100 * s.missing_rate,
                100 * s.avg_nonfunctional_fraction,
                s.n_requests,
                s.mean_request_latency_s / 3600.0,
            ]
        )
    print(
        format_table(
            ["ERP", "travel kJ", "missing %", "nonfunc %", "requests", "latency h"],
            rows,
            precision=2,
            title="ERP trade-off (combined scheduler, 3 simulated days)",
        )
    )
    best = min(rows, key=lambda r: (r[2] > 0.5, r[1]))
    print(
        f"\nReading: travel falls as ERP grows; pick the largest ERP before "
        f"the missing rate lifts off (here around ERP = {best[0]:.1f})."
    )


if __name__ == "__main__":
    main()
