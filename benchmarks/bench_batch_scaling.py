"""Batch-size scaling of the lockstep multi-world engine.

Measures wall-clock *per world* for the same tick-only workload as the
SoA scaling curve (``bench_sim_performance._soa_scaling_config``) run
two ways: B worlds looped through the serial SoA engine, and the same
B worlds advanced in lockstep by :class:`repro.sim.batch.BatchedEngine`.
Per-cell summaries are bit-identical by construction (covered by the
golden matrix and property tests); this benchmark pins the *reason* the
batch engine exists — the per-tick Python dispatch cost is paid once
per batch instead of once per world, so per-world cost falls as B
grows.

Records ``t_serial_<n>_s`` / ``t_batch_<n>_b<B>_s`` /
``speedup_<n>_b<B>x`` in ``BENCH_batch_scaling.json`` history and
asserts the batched engine beats the serial loop at every measured
B >= 8 (with a hard 3x floor at B = 64, n = 100 — the headline claim).
"""

import os
import time

from repro.sim.batch import BatchedEngine
from repro.sim.world import World
from repro.utils.tables import format_table

from _shared import emit
from bench_sim_performance import _soa_scaling_config

#: (population, batch sizes) measured per experiment scale.  The smoke
#: matrix keeps CI fast; bench/paper also measure n=1000 and B=256.
_BATCH_MATRIX = {
    "smoke": {100: [1, 8, 64]},
    "bench": {100: [1, 8, 64, 256], 1000: [1, 8, 64, 256]},
    "paper": {100: [1, 8, 64, 256], 1000: [1, 8, 64, 256]},
}

#: Hard per-world speedup floor at B = 64, n = 100.
_B64_SPEEDUP_MIN = 3.0

#: Worlds timed for the serial per-world reference (per-world serial
#: cost does not depend on B, so a handful of worlds suffices).
_SERIAL_WORLDS = 4


def _worlds(n_sensors: int, count: int, external_tick: bool) -> list:
    """``count`` same-shape worlds differing only by seed."""
    base = _soa_scaling_config(n_sensors)
    return [
        World(base.with_overrides(seed=11 + i), external_tick=external_tick)
        for i in range(count)
    ]


def _serial_per_world(n_sensors: int) -> float:
    """Wall seconds per world for the serial SoA loop (construction off
    the clock; the timed region is ``World.run`` end to end)."""
    worlds = _worlds(n_sensors, _SERIAL_WORLDS, external_tick=False)
    t0 = time.perf_counter()
    for w in worlds:
        w.run()
    return (time.perf_counter() - t0) / len(worlds)


def _batch_per_world(n_sensors: int, batch: int) -> float:
    """Wall seconds per world for one lockstep batch of size ``batch``
    (world and stack construction off the clock; the timed region is
    ``BatchedEngine.run`` end to end, finalization included)."""
    engine = BatchedEngine(
        worlds=_worlds(n_sensors, batch, external_tick=True), debug=False
    )
    t0 = time.perf_counter()
    engine.run()
    return (time.perf_counter() - t0) / batch


def bench_batch_scaling():
    """Per-world wall clock, serial SoA loop vs lockstep batches."""
    old = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = "1"  # both legs run the SoA tick kernels
    try:
        scale = os.environ.get("REPRO_SCALE", "bench")
        matrix = _BATCH_MATRIX.get(scale, _BATCH_MATRIX["bench"])
        _worlds(100, 2, external_tick=False)[0].run()  # warm caches off the clock
        rows, extra, losses = [], {}, {}
        for n, batches in matrix.items():
            t_serial = _serial_per_world(n)
            extra[f"t_serial_{n}_s"] = t_serial
            for B in batches:
                t_batch = _batch_per_world(n, B)
                speedup = t_serial / t_batch if t_batch > 0 else float("inf")
                extra[f"t_batch_{n}_b{B}_s"] = t_batch
                extra[f"speedup_{n}_b{B}x"] = speedup
                rows.append(
                    [n, B, round(t_serial, 4), round(t_batch, 4), round(speedup, 2)]
                )
                if B >= 8 and speedup <= 1.0:
                    losses[(n, B)] = round(speedup, 2)
        table = format_table(
            ["sensors", "batch", "serial s/world", "batched s/world", "speedup x"],
            rows,
            title=f"Batched engine scaling (per-world wall clock, scale={scale})",
        )
        emit("batch_scaling", table, extra=extra)
        assert not losses, (
            f"batched engine did not beat the serial SoA loop at {losses} "
            f"(per-world speedup <= 1x at B >= 8)"
        )
        headline = extra.get("speedup_100_b64x")
        assert headline is not None and headline >= _B64_SPEEDUP_MIN, (
            f"per-world speedup at B=64, n=100 is {headline:.2f}x "
            f"(< {_B64_SPEEDUP_MIN}x floor)"
        )
    finally:
        if old is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = old
