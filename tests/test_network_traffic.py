"""Unit tests for repro.network.traffic."""

import numpy as np
import pytest

from repro.network.routing import RoutingTree
from repro.network.topology import Topology
from repro.network.traffic import relay_rates, subtree_rates


def chain_tree(n=4):
    """Sensors in a line at x = 1..n, base at the origin."""
    pts = np.column_stack([np.arange(1, n + 1) * 1.0, np.zeros(n)])
    topo = Topology(pts, comm_range=1.1, base_station=[0.0, 0.0])
    return RoutingTree(topo)


class TestSubtreeRates:
    def test_chain_accumulates(self):
        tree = chain_tree(4)
        rates = np.array([1.0, 1.0, 1.0, 1.0])
        through = subtree_rates(tree, rates)
        # Node 0 (nearest base) carries everything; base sees the total.
        assert through[:4].tolist() == [4.0, 3.0, 2.0, 1.0]
        assert through[4] == pytest.approx(4.0)

    def test_disconnected_sources_dropped(self):
        pts = np.array([[1.0, 0.0], [50.0, 0.0]])
        topo = Topology(pts, comm_range=1.5, base_station=[0.0, 0.0])
        tree = RoutingTree(topo)
        through = subtree_rates(tree, np.array([1.0, 1.0]))
        assert through[0] == 1.0
        assert through[1] == 0.0
        assert through[2] == 1.0

    def test_shape_validation(self):
        tree = chain_tree(3)
        with pytest.raises(ValueError):
            subtree_rates(tree, np.zeros(5))

    def test_negative_rate_rejected(self):
        tree = chain_tree(3)
        with pytest.raises(ValueError):
            subtree_rates(tree, np.array([-1.0, 0.0, 0.0]))


class TestRelayRates:
    def test_chain(self):
        tree = chain_tree(4)
        relay = relay_rates(tree, np.ones(4))
        assert relay.tolist() == [3.0, 2.0, 1.0, 0.0]

    def test_leaf_relays_nothing(self):
        tree = chain_tree(5)
        relay = relay_rates(tree, np.ones(5))
        assert relay[-1] == 0.0

    def test_conservation(self, rng):
        """Total delivered to base = total originated by connected sensors."""
        pts = rng.uniform(0, 40, size=(60, 2))
        topo = Topology(pts, comm_range=12.0, base_station=[20.0, 20.0])
        tree = RoutingTree(topo)
        orig = rng.uniform(0, 2, size=60)
        through = subtree_rates(tree, orig)
        connected = tree.connected_mask()
        assert through[tree.base] == pytest.approx(orig[connected].sum())

    def test_nonnegative(self, rng):
        pts = rng.uniform(0, 40, size=(50, 2))
        topo = Topology(pts, comm_range=10.0, base_station=[20.0, 20.0])
        tree = RoutingTree(topo)
        relay = relay_rates(tree, rng.uniform(0, 1, size=50))
        assert np.all(relay >= 0)
