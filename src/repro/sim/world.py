"""The WRSN simulation world: a thin composition root.

The world wires four pluggable subsystems (:mod:`repro.sim.components`)
over one shared :class:`SimulationState` and drives the paper's joint
loop with three periodic events: **tick** (batteries advance, duty
rotates, the ERC gate re-evaluates), **relocation** (targets move and
clusters re-form) and the **dispatch round** (backlog to scheduler,
fleet executes sorties).  Every pluggable piece is built by name
through :mod:`repro.registry`, so new policies plug in without touching
this module.  A single RNG seed makes a run fully deterministic.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

import numpy as np

from ..core.scheduling import Scheduler
from ..obs.blackbox import digest_fields, digest_rng, digest_state
from ..registry import SCHEDULERS
from .components import (
    PRIO_DISPATCH,
    PRIO_RELOCATE,
    PRIO_TICK,
    ClusterManager,
    EnergyAccounting,
    FleetController,
    RequestGate,
    SimulationState,
)
from .config import SimulationConfig
from .metrics import SimulationSummary
from .serialization import snapshot_arrays

__all__ = ["World"]

#: Cadence of full per-field digests in flight records (see
#: :meth:`World._flight_record`); plain ticks in between carry only the
#: combined state digest.
_FULL_DIGEST_EVERY = 16


class World:
    """One fully wired simulation instance.

    ``scheduler`` defaults to the one named by ``config.scheduler``
    (built from :data:`repro.registry.SCHEDULERS`); a ``trace``
    recorder, when given, captures every semantic event and sample, an
    ``instruments`` registry (:class:`repro.obs.Instruments`) collects
    counters and phase timers from every component, a ``spans`` tracer
    (:class:`repro.obs.SpanTracer`) records the hierarchical
    run → tick → phase flight-recorder trace, and ``monitors``
    (:class:`repro.obs.MonitorSet`) trips on runtime invariant
    violations.  The wired components are exposed as ``world.energy``,
    ``world.clusters``, ``world.gate`` and ``world.fleet``; the shared
    state as ``world.state``.
    """

    def __init__(
        self,
        config: SimulationConfig,
        scheduler: Optional[Scheduler] = None,
        trace=None,
        instruments=None,
        spans=None,
        monitors=None,
        blackbox=None,
        external_tick: bool = False,
    ) -> None:
        self.cfg = config
        self.state = SimulationState.from_config(
            config, trace=trace, instruments=instruments, spans=spans,
            monitors=monitors, blackbox=blackbox,
        )
        self._bb_wall = perf_counter()
        self.clusters = ClusterManager(self.state)
        if scheduler is None:
            scheduler = SCHEDULERS.build(config.scheduler, fleet_size=config.n_rvs)
        self.gate = RequestGate(self.state)
        self.energy = EnergyAccounting(self.state, on_deaths=self.gate.note_deaths)
        self.fleet = FleetController(
            self.state, self.energy, self.gate, scheduler, on_change=self._record_metrics
        )
        self._record_metrics()

        sim = self.state.sim
        if not external_tick:
            sim.schedule(config.tick_s, self._on_tick, priority=PRIO_TICK)
        sim.schedule(config.target_period_s, self._on_relocate, priority=PRIO_RELOCATE)
        sim.schedule(config.dispatch_period_s, self._on_dispatch_round, priority=PRIO_DISPATCH)

    # -- periodic events --

    def _on_tick(self) -> None:
        with self.state.spans.span("tick", t=self.state.now):
            self.energy.advance()
            if getattr(self.state.activator, "rotates", True):
                self.energy.apply_handoffs(self.clusters.rotate())
                self.energy.recompute()
            self.gate.maybe_adjust()
            self.gate.check()
            self._record_metrics()
        self.sim.schedule_in(self.cfg.tick_s, self._on_tick, priority=PRIO_TICK)
        if self.state.blackbox.enabled:
            self._flight_record("tick")

    def _on_dispatch_round(self) -> None:
        """Periodic base-station scheduling round over the backlog."""
        with self.state.spans.span("dispatch_round", t=self.state.now):
            self.energy.advance()
            self.gate.check()
            self.fleet.dispatch()
            self._record_metrics()
        self.sim.schedule_in(
            self.cfg.dispatch_period_s, self._on_dispatch_round, priority=PRIO_DISPATCH
        )
        if self.state.blackbox.enabled:
            self._flight_record("dispatch")

    def _on_relocate(self) -> None:
        with self.state.spans.span("relocate", t=self.state.now):
            self.energy.advance()
            self.clusters.relocate()
            self.energy.recompute()
            self.gate.check()
            self._record_metrics()
        self.sim.schedule_in(
            self.cfg.target_period_s, self._on_relocate, priority=PRIO_RELOCATE
        )
        if self.state.blackbox.enabled:
            self._flight_record("relocate")

    def _flight_record(self, kind: str) -> None:
        """One flight-recorder record for the periodic event just fired.

        Runs *after* the handler rescheduled itself, so a checkpoint
        taken here sees the complete pending-event set.  The digests
        cover exactly the ``snapshot_arrays`` fields — the bit-equality
        surface of the two tick engines — plus the RNG state, which is
        what makes recorded runs replayable and engine-auditable.

        Plain ticks get one combined digest (the per-event hot path);
        every ``_FULL_DIGEST_EVERY``-th record and every decision event
        (dispatch/relocate) also gets per-field digests, so a replay
        divergence near those points names the exact drifted array.
        The choice is a pure function of the record's ``seq``, which
        keeps replayed records structurally identical to recorded ones.
        """
        s = self.state
        bb = s.blackbox
        wall = perf_counter()
        snap = snapshot_arrays(s)
        if kind != "tick" or (bb.seq + 1) % _FULL_DIGEST_EVERY == 0:
            digests = digest_state(snap)
        else:
            digests = {"state": digest_fields(snap)}
        bb.record(
            kind,
            s.now,
            digests,
            rng=digest_rng(s.rng.bit_generator.state),
            wall_ms=round((wall - self._bb_wall) * 1e3, 3),
            backlog=len(s.requests),
            events_fired=s.sim.events_fired,
        )
        self._bb_wall = wall
        if kind == "tick" and bb.should_checkpoint():
            from .replay import capture_checkpoint

            ckpt = capture_checkpoint(self, bb.seq)
            if ckpt is not None:
                bb.add_checkpoint(ckpt)

    def _record_metrics(self) -> None:
        s = self.state
        alive = s.bank.alive_mask()
        if np.any(s.coverable):
            coverage = float(np.mean(s.activator.covered_mask(alive)[s.coverable]))
        else:
            coverage = 1.0
        nonfunctional = float(np.mean(~alive)) if self.cfg.n_sensors > 0 else 0.0
        operational = float(np.count_nonzero(alive))
        s.metrics.record(s.now, coverage, nonfunctional, operational)
        if s.trace.enabled:
            s.trace.sample_series(s.now, "coverage", coverage)
            s.trace.sample_series(s.now, "nonfunctional", nonfunctional)
            s.trace.sample_series(s.now, "operational", operational)
            s.trace.sample_series(s.now, "backlog", float(len(s.requests)))

    # -- run --

    def run(self) -> SimulationSummary:
        """Run to the configured horizon and return the summary."""
        with self.state.instruments.timer("world.run"), self.state.spans.span(
            "run",
            scheduler=self.cfg.scheduler,
            activation=self.cfg.activation,
            erp=self.cfg.erp,
            seed=self.cfg.seed,
        ):
            self.sim.run_until(self.cfg.sim_time_s)
            self.energy.advance()
        books = self.fleet.totals()
        return self.state.metrics.finalize(
            t_end=self.cfg.sim_time_s,
            rv_distance_m=books["distance_m"],
            rv_moving_energy_j=books["moving_energy_j"],
            delivered_energy_j=books["delivered_energy_j"],
            n_sorties=books["sorties"],
            events_fired=self.sim.events_fired,
        )

    # -- introspection helpers (used by examples and tests) --

    def energy_breakdown(self) -> Dict[str, float]:
        """Cumulative network consumption by category (Joules):
        ``idle``, ``sensing``, ``relay``, ``leakage`` and
        ``notifications`` (round-robin hand-off packets).  Loose upper
        bound where sensors clamp at empty."""
        return self.energy.breakdown()

    def snapshot(self) -> Dict[str, np.ndarray]:
        """A read-only view of the current world state."""
        s = self.state
        alive = s.bank.alive_mask()
        return {
            "time_s": np.array(s.now),
            "sensor_positions": s.sensor_pos.copy(),
            "battery_levels_j": s.bank.levels_j.copy(),
            "alive": alive,
            "active": s.activator.active_mask(alive),
            "target_positions": s.targets.positions.copy(),
            "cluster_membership": s.cluster_set.membership.copy(),
            "rv_positions": s.arrays.rv_pos.copy()
            if s.arrays is not None
            else (
                np.vstack([rv.position for rv in self.rvs])
                if self.rvs
                else np.empty((0, 2))
            ),
            "pending_requests": s.requests.node_ids,
        }

    # -- pre-split delegation surface (stable API over the component split) --

    def _recompute_rates(self) -> None:
        self.energy.recompute()

    def _advance_energy(self) -> None:
        self.energy.advance()

    def _rebuild_clusters(self) -> None:
        self.clusters.rebuild()

    def _check_requests(self) -> bool:
        return self.gate.check()

    def _dispatch(self) -> None:
        self.fleet.dispatch()

    def _rv_arrive(self, rv) -> None:
        self.fleet._rv_arrive(rv)


# Flat attribute access forwarded to the owning component; the private
# names keep the pre-split white-box tests and tooling working.
_FORWARDED = {
    "sim": "state.sim", "rng": "state.rng", "trace": "state.trace",
    "arrays": "state.arrays",
    "instruments": "state.instruments", "spans": "state.spans",
    "monitors": "state.monitors",
    "blackbox": "state.blackbox",
    "field": "state.field", "power": "state.power",
    "sensor_pos": "state.sensor_pos", "bank": "state.bank",
    "topology": "state.topology", "routing": "state.routing",
    "targets": "state.targets", "cluster_set": "state.cluster_set",
    "activator": "state.activator", "metrics": "state.metrics",
    "requests": "state.requests", "requested": "state.requested",
    "_coverable": "state.coverable", "_uplink_etx": "state.uplink_etx",
    "rvs": "fleet.rvs", "scheduler": "fleet.scheduler",
    "_returning": "fleet.returning", "erc": "gate.erc",
    "_rates": "energy.rates", "_active": "energy.active",
}

for _name, _path in _FORWARDED.items():
    _owner, _attr = _path.split(".")
    setattr(
        World,
        _name,
        property(lambda self, o=_owner, a=_attr: getattr(getattr(self, o), a)),
    )
del _name, _path, _owner, _attr
