"""Single-source shortest paths on a CSR graph.

A from-scratch binary-heap Dijkstra — the paper routes sensing data to
the base station "using Dijkstra's shortest path algorithm" (Section V).
Implemented directly on the CSR arrays of
:class:`repro.network.topology.Topology` with the standard lazy-deletion
heap; the test suite cross-validates it against
:func:`networkx.single_source_dijkstra_path_length`.
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np

__all__ = ["shortest_paths"]


def shortest_paths(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    source: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra from ``source`` over a CSR adjacency.

    Args:
        indptr: CSR row pointer, length ``n + 1``.
        indices: CSR column indices (directed arcs).
        weights: non-negative arc lengths aligned with ``indices``.
        source: start vertex.

    Returns:
        ``(dist, parent)`` — ``dist[v]`` is the shortest distance from
        ``source`` to ``v`` (``inf`` if unreachable); ``parent[v]`` is
        the predecessor of ``v`` on one shortest path (``-1`` for the
        source and unreachable vertices).
    """
    n = len(indptr) - 1
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if np.any(weights < 0):
        raise ValueError("Dijkstra requires non-negative weights")
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.intp)
    done = np.zeros(n, dtype=bool)
    dist[source] = 0.0
    heap: list = [(0.0, source)]
    while heap:
        d_u, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        start, stop = indptr[u], indptr[u + 1]
        for k in range(start, stop):
            v = indices[k]
            if done[v]:
                continue
            nd = d_u + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, int(v)))
    return dist, parent
