"""Wall-clock benchmarks for the two perf layers (not a paper figure).

Two A/B measurements, each asserting the fast path changes *nothing*
about the results:

* ``bench_sweep_wallclock`` — the ERP sweep serial (``jobs=1``) vs
  fanned out over the process-pool cell executor.  The parallel result
  must serialize byte-identically to the serial one; the measured
  speedup, worker count and CPU count land in
  ``BENCH_sweep_wallclock.json``.
* ``bench_incremental_recompute_speedup`` — one experiment cell with
  the incremental rate recomputation disabled (``REPRO_INCREMENTAL=0``)
  vs enabled.  Summaries must match exactly; the whole-run speedup is
  recorded in ``BENCH_incremental_recompute.json``.

Speedup *assertions* are deliberately conditional on the host actually
having cores to parallelize over — a 1-CPU CI runner still verifies
equality, it just records a speedup near (or below) 1.
"""

import json
import os
import time

from repro.experiments import current_scale, run_erp_sweep
from repro.experiments.executor import default_jobs
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation
from repro.utils.tables import format_table

from _shared import emit

#: Reduced grid: enough cells to amortize pool startup at every scale
#: without turning the benchmark into a second full sweep.
SCHEDULERS = ("greedy", "combined")
ERPS = (0.0, 0.6)


def _sweep_jobs() -> int:
    """Worker count for the parallel leg: REPRO_JOBS when set, else
    up to 4 processes (the executor's target runner size)."""
    if os.environ.get("REPRO_JOBS"):
        return default_jobs()
    return max(1, min(4, os.cpu_count() or 1))


def bench_sweep_wallclock():
    scale = current_scale()
    jobs = _sweep_jobs()
    # The disk cache would make both legs near-instant replays; this
    # benchmark must measure actual simulation work.
    cache = os.environ.pop("REPRO_CACHE", None)
    try:
        t0 = time.perf_counter()
        serial = run_erp_sweep(scale, SCHEDULERS, ERPS, jobs=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_erp_sweep(scale, SCHEDULERS, ERPS, jobs=jobs)
        t_parallel = time.perf_counter() - t0
    finally:
        if cache is not None:
            os.environ["REPRO_CACHE"] = cache
    # Determinism contract: whatever `jobs` is, the sweep serializes
    # byte-identically to the serial loop.
    assert json.dumps(parallel, sort_keys=True) == json.dumps(serial, sort_keys=True)
    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    n_cells = len(SCHEDULERS) * len(ERPS) * len(scale.seeds)
    cpus = os.cpu_count() or 1
    table = format_table(
        ["leg", "jobs", "cells", "seconds"],
        [
            ["serial", 1, n_cells, round(t_serial, 3)],
            ["parallel", jobs, n_cells, round(t_parallel, 3)],
            ["speedup", "", "", round(speedup, 2)],
        ],
        title=f"ERP sweep wall clock ({scale.name} scale, {cpus} CPUs)",
    )
    emit(
        "sweep_wallclock",
        table,
        extra={
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "speedup": speedup,
            "jobs": jobs,
            "cells": n_cells,
            "cpu_count": cpus,
            "identical": True,
        },
    )
    if cpus >= 4 and jobs >= 4 and n_cells >= 4:
        # On a real multi-core runner the fan-out must actually pay.
        assert speedup >= 1.5, f"parallel sweep speedup only {speedup:.2f}x"


def bench_incremental_recompute_speedup():
    cfg = SimulationConfig.experiment(
        sim_time_s=current_scale().days * DAY_S, seed=1, scheduler="combined", erp=0.6
    )
    prior = os.environ.get("REPRO_INCREMENTAL")
    try:
        os.environ["REPRO_INCREMENTAL"] = "0"
        t0 = time.perf_counter()
        full = run_simulation(cfg)
        t_full = time.perf_counter() - t0
        os.environ["REPRO_INCREMENTAL"] = "1"
        t0 = time.perf_counter()
        fast = run_simulation(cfg)
        t_fast = time.perf_counter() - t0
    finally:
        if prior is None:
            os.environ.pop("REPRO_INCREMENTAL", None)
        else:
            os.environ["REPRO_INCREMENTAL"] = prior
    # Exactness contract: the fast path is bit-identical, not "close".
    assert fast.as_dict() == full.as_dict()
    speedup = t_full / t_fast if t_fast > 0 else 0.0
    table = format_table(
        ["path", "seconds"],
        [
            ["full recompute", round(t_full, 3)],
            ["incremental", round(t_fast, 3)],
            ["speedup", round(speedup, 2)],
        ],
        title=f"Incremental rate recomputation ({current_scale().name} scale)",
    )
    emit(
        "incremental_recompute",
        table,
        extra={
            "full_s": t_full,
            "incremental_s": t_fast,
            "speedup": speedup,
            "identical": True,
        },
    )
    assert speedup > 1.0, f"incremental path slower than full ({speedup:.2f}x)"
