"""Opt-in on-disk cache for experiment cells.

Figure sweeps re-run many identical simulations (e.g. regenerating
Fig. 6a after 6b at the same scale).  With ``REPRO_CACHE=<dir>`` set,
every completed run is stored as JSON keyed by the SHA-256 of its full
serialized configuration — bit-exact keying, so a cache hit is always
the same simulation.  Unset (the default), everything runs fresh.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import List, Optional, Sequence

from ..sim.config import SimulationConfig
from ..sim.metrics import SimulationSummary
from ..sim.runner import run_simulation
from ..sim.serialization import config_to_dict

__all__ = ["cache_dir", "config_key", "cached_run", "cached_run_seeds", "summary_from_dict"]


def cache_dir() -> Optional[pathlib.Path]:
    """The cache directory from ``REPRO_CACHE``, or None (disabled)."""
    value = os.environ.get("REPRO_CACHE", "").strip()
    if not value:
        return None
    path = pathlib.Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


def config_key(config: SimulationConfig) -> str:
    """A stable content hash of the *complete* configuration."""
    payload = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def summary_from_dict(data: dict) -> SimulationSummary:
    """Rebuild a summary from its :meth:`SimulationSummary.as_dict`.

    Count-valued fields are restored to ints.
    """
    kwargs = dict(data)
    for int_field in ("n_recharges", "n_sorties", "n_requests", "events_fired"):
        kwargs[int_field] = int(kwargs[int_field])
    return SimulationSummary(**kwargs)


def cached_run(config: SimulationConfig) -> SimulationSummary:
    """Run one simulation, consulting/filling the cache when enabled."""
    directory = cache_dir()
    if directory is None:
        return run_simulation(config)
    path = directory / f"{config_key(config)}.json"
    if path.exists():
        return summary_from_dict(json.loads(path.read_text()))
    summary = run_simulation(config)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(summary.as_dict()))
    tmp.replace(path)  # atomic on POSIX: parallel writers can't corrupt
    return summary


def cached_run_seeds(
    config: SimulationConfig, seeds: Sequence[int]
) -> List[SimulationSummary]:
    """Seed fan-out through the cache.

    Misses are executed through :func:`repro.sim.runner.run_seeds`
    (which honors ``REPRO_PROCS`` parallelism) and then stored.
    """
    directory = cache_dir()
    if directory is None:
        from ..sim.runner import run_seeds

        return run_seeds(config, seeds)
    out: List[Optional[SimulationSummary]] = []
    misses: List[int] = []
    for s in seeds:
        cfg = config.with_overrides(seed=s)
        path = directory / f"{config_key(cfg)}.json"
        if path.exists():
            out.append(summary_from_dict(json.loads(path.read_text())))
        else:
            out.append(None)
            misses.append(s)
    if misses:
        from ..sim.runner import run_seeds

        fresh = run_seeds(config, misses)
        it = iter(fresh)
        for i, s in enumerate(seeds):
            if out[i] is None:
                summary = next(it)
                cfg = config.with_overrides(seed=s)
                path = directory / f"{config_key(cfg)}.json"
                tmp = path.with_suffix(".tmp")
                tmp.write_text(json.dumps(summary.as_dict()))
                tmp.replace(path)
                out[i] = summary
    return [s for s in out if s is not None]
