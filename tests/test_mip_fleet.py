"""Tests for the exact fleet (multi-RV) solver."""

import itertools

import numpy as np
import pytest

from repro.core.mip import (
    RechargeInstance,
    solve_exact_fleet,
    solve_exact_single_rv,
    verify_routes,
)


def make_instance(seed, n=6, em=1.0, capacity=float("inf"), demand_scale=40.0, spread=60.0):
    rng = np.random.default_rng(seed)
    return RechargeInstance(
        positions=rng.uniform(0, spread, size=(n, 2)),
        demands=rng.uniform(0.5, 1.0, size=n) * demand_scale,
        start=np.array([spread / 2, spread / 2]),
        em_j_per_m=em,
        capacity_j=capacity,
    )


class TestFleetSolver:
    def test_one_rv_matches_single_solver(self):
        for seed in range(5):
            inst = make_instance(seed, capacity=150.0)
            single = solve_exact_single_rv(inst)
            fleet = solve_exact_fleet(inst, 1)
            assert fleet.profit == pytest.approx(single.profit)

    def test_more_rvs_never_worse(self):
        for seed in range(4):
            inst = make_instance(seed, capacity=80.0)
            p1 = solve_exact_fleet(inst, 1).profit
            p2 = solve_exact_fleet(inst, 2).profit
            p3 = solve_exact_fleet(inst, 3).profit
            assert p1 <= p2 + 1e-9
            assert p2 <= p3 + 1e-9

    def test_capacity_forces_split(self):
        """Two far-apart profitable nodes, capacity fits only one each:
        two RVs must split them and beat one RV."""
        inst = RechargeInstance(
            positions=np.array([[0.0, 0.0], [100.0, 0.0]]),
            demands=np.array([90.0, 90.0]),
            start=np.array([50.0, 0.0]),
            em_j_per_m=0.1,
            capacity_j=100.0,
        )
        p1 = solve_exact_fleet(inst, 1).profit
        p2 = solve_exact_fleet(inst, 2).profit
        assert p2 > p1
        sol = solve_exact_fleet(inst, 2)
        served = sorted(n for r in sol.routes for n in r)
        assert served == [0, 1]

    def test_routes_are_disjoint_and_feasible(self):
        for seed in range(5):
            inst = make_instance(seed, n=7, capacity=120.0)
            sol = solve_exact_fleet(inst, 3)
            total = verify_routes(inst, [list(r) for r in sol.routes])
            assert total == pytest.approx(sol.profit)

    def test_matches_bruteforce_two_rvs(self):
        """Exhaustive check on tiny instances: every 2-coloring of every
        node subset, every per-route permutation."""
        for seed in range(3):
            inst = make_instance(seed, n=5, capacity=90.0, demand_scale=50.0)
            best = 0.0
            nodes = list(range(5))
            for assignment in itertools.product((0, 1, 2), repeat=5):  # 2 = skip
                r0 = [i for i in nodes if assignment[i] == 0]
                r1 = [i for i in nodes if assignment[i] == 1]
                best_pair = -np.inf
                for p0 in itertools.permutations(r0):
                    if not inst.route_feasible(p0):
                        continue
                    for p1 in itertools.permutations(r1):
                        if not inst.route_feasible(p1):
                            continue
                        best_pair = max(
                            best_pair, inst.route_profit(p0) + inst.route_profit(p1)
                        )
                if np.isfinite(best_pair):
                    best = max(best, best_pair)
            sol = solve_exact_fleet(inst, 2)
            assert sol.profit == pytest.approx(best)

    def test_empty_instance(self):
        inst = RechargeInstance(np.empty((0, 2)), np.array([]), np.zeros(2))
        sol = solve_exact_fleet(inst, 3)
        assert sol.profit == 0.0
        assert sol.routes == ((), (), ())

    def test_validation(self):
        inst = make_instance(0)
        with pytest.raises(ValueError):
            solve_exact_fleet(inst, 0)
        big = RechargeInstance(np.zeros((15, 2)), np.zeros(15), np.zeros(2))
        with pytest.raises(ValueError):
            solve_exact_fleet(big, 2)

    def test_schedulers_bounded_by_fleet_optimum(self, rng):
        """Partition and Combined plans never beat the exact optimum."""
        from repro.core.combined import CombinedScheduler
        from repro.core.partition import PartitionScheduler
        from repro.core.requests import RechargeNodeList, RechargeRequest
        from repro.core.scheduling import RVView

        inst = make_instance(11, n=8, em=1.0, capacity=150.0, demand_scale=50.0)
        opt = solve_exact_fleet(inst, 2).profit
        for scheduler in (CombinedScheduler(), PartitionScheduler(2)):
            reqs = [
                RechargeRequest(i, inst.positions[i], float(inst.demands[i]))
                for i in range(inst.n)
            ]
            views = [
                RVView(rv_id=k, position=inst.start, budget_j=inst.capacity_j, em_j_per_m=1.0)
                for k in range(2)
            ]
            plans = scheduler.assign(RechargeNodeList(reqs), views, rng)
            total = sum(
                verify_routes(inst, [list(p.node_ids)]) for p in plans.values()
            )
            assert total <= opt + 1e-6
